"""Shared harness for the model-vs-simulator conformance suite.

Measures the DES latency of one (op, algo) collective on the miniature
Fig 7/9/10 configurations with the OSU protocol (warm-up, alignment
barrier, one timed repetition — the engine is deterministic) and prices
the same call with :mod:`repro.analysis.model`.
"""

from __future__ import annotations

import functools

from repro.analysis.model import CostModel, predict
from repro.core import HybridContext
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen, hazel_hen_2s, vulcan
from repro.mpi import run_program
from repro.mpi.collectives import registry
from repro.mpi.collectives.registry import CollRequest, ForcedSelection
from repro.mpi.datatypes import Bytes
from repro.mpi.constants import ReduceOp

__all__ = [
    "MINIS", "SIZES", "CASES", "TOLERANCES", "DEFAULT_TOL",
    "measure_des", "measure_model", "applicable", "divergence",
]

#: Miniature versions of the paper's Fig 7 (single Hazel Hen node),
#: Fig 9 (multi-node Hazel Hen, regular ppn) and Fig 10 (multi-node
#: Vulcan, irregular ppn) configurations.  All three keep every node
#: pair within one router/leaf, so hop counts are exact.
MINIS = {
    "fig7": ("hazel_hen", [8]),
    "fig9": ("hazel_hen", [4, 4, 4, 4]),
    "fig10": ("vulcan", [6, 6, 4]),
    # Two-socket Hazel Hen variants, one per on-node transport, with the
    # "balanced" slot→socket mapping so half of each node's ranks sit on
    # the second socket (cross-socket traffic in every on-node stage).
    "fig9_2s": ("hazel_hen_2s", [4, 4, 4, 4]),
    "fig9_2s_cma": ("hazel_hen_2s_cma", [4, 4, 4, 4]),
    "fig9_2s_pip": ("hazel_hen_2s_pip", [4, 4, 4, 4]),
}

_PRESETS = {
    "hazel_hen": hazel_hen,
    "vulcan": vulcan,
    "hazel_hen_2s": hazel_hen_2s,
    "hazel_hen_2s_cma": lambda n: hazel_hen_2s(
        n, transport="cma_single_copy"
    ),
    "hazel_hen_2s_pip": lambda n: hazel_hen_2s(n, transport="pip_direct"),
}

#: Per-rank payload bytes: eager, mid, and rendezvous regime on both
#: machines (eager thresholds 8 KiB / 12 KiB).
SIZES = (8, 2048, 65536)

#: Every registered (op, algo) pair — the conformance suite must cover
#: all of them (asserted by ``test_every_registered_pair_is_covered``).
CASES = sorted(
    (op, algo.name)
    for op in registry.ops()
    for algo in registry.algorithms_for(op)
)

#: Relative divergence tolerance (|model - des| / des) per algorithm,
#: keyed (op, algo).  The default targets the issue's 25% worst-case
#: bound; documented exceptions cover composite algorithms whose
#: contention interleaving the closed forms approximate (tolerances
#: mirrored in the table in ``docs/modeling.md``).
DEFAULT_TOL = 0.25
TOLERANCES: dict[tuple[str, str], float] = {
    # Rendezvous-size pairwise alltoall keeps every NIC's tx and rx
    # queue saturated at once; the model prices the queues separately
    # and under-predicts the coupled backlog (worst case fig9/fig10 at
    # 64 KiB, ~28%).  Median stays below 4%.
    ("alltoall", "pairwise"): 0.30,
}

#: Median relative divergence bound across each algorithm's cases.
MEDIAN_TOL = 0.10


def spec_of(mini: str):
    machine, counts = MINIS[mini]
    return _PRESETS[machine](len(counts))


def placement_of(mini: str) -> Placement:
    placement = Placement.irregular(MINIS[mini][1])
    if spec_of(mini).node.sockets > 1:
        placement = placement.with_socket_mode("balanced")
    return placement


def _mpi_op(op: str, nbytes: int):
    """Coroutine factory running one mpi-layer collective call."""

    def op_fn(mpi):
        comm = mpi.world
        if op == "allgather":
            yield from comm.allgather(Bytes(nbytes))
        elif op == "allgatherv":
            yield from comm.allgatherv(Bytes(nbytes))
        elif op == "bcast":
            yield from comm.bcast(Bytes(nbytes), root=0)
        elif op == "gather":
            yield from comm.gather(Bytes(nbytes), root=0)
        elif op == "gatherv":
            yield from comm.gatherv(Bytes(nbytes), root=0)
        elif op == "scatter":
            parts = (
                [Bytes(nbytes)] * comm.size if comm.rank == 0 else None
            )
            yield from comm.scatter(parts, root=0)
        elif op == "reduce":
            yield from comm.reduce(Bytes(nbytes), ReduceOp.SUM, root=0)
        elif op == "allreduce":
            yield from comm.allreduce(Bytes(nbytes), ReduceOp.SUM)
        elif op == "reduce_scatter":
            yield from comm.reduce_scatter(Bytes(nbytes), ReduceOp.SUM)
        elif op == "scan":
            yield from comm.scan(Bytes(nbytes), ReduceOp.SUM)
        elif op == "exscan":
            yield from comm.exscan(Bytes(nbytes), ReduceOp.SUM)
        elif op == "alltoall":
            yield from comm.alltoall(
                [Bytes(nbytes)] * comm.size
            )
        elif op == "barrier":
            yield from comm.barrier()
        else:
            raise ValueError(f"no program for op {op!r}")

    return op_fn


#: Absolute virtual time all ranks align to before the timed call —
#: far beyond any warm-up; a fixed-point rendezvous has zero skew,
#: unlike a barrier (whose release wave reaches nodes at different
#: times, letting early ranks overlap work into the timed region).
ALIGN_AT = 1.0e-2


def _osu_program(mpi, op: str, nbytes: int):
    """OSU protocol: warm-up, skew-free alignment, one timed call."""
    comm = mpi.world
    if op.startswith("hy_"):
        ctx = yield from HybridContext.create(comm)
        if op == "hy_allgather":
            buf = yield from ctx.allgather_buffer(nbytes)

            def op_fn(_mpi):
                yield from ctx.allgather(buf)

        elif op == "hy_bcast":
            buf = yield from ctx.bcast_buffer(max(nbytes, 1))

            def op_fn(_mpi):
                yield from ctx.bcast(buf, root=0)

        else:
            raise ValueError(f"no program for op {op!r}")
    else:
        op_fn = _mpi_op(op, nbytes)
    yield from op_fn(mpi)          # warm-up (setup/window allocation)
    yield mpi.compute(ALIGN_AT - mpi.now)   # align all ranks exactly
    yield from op_fn(mpi)
    return mpi.now - ALIGN_AT


@functools.lru_cache(maxsize=None)
def measure_des(mini: str, op: str, algo: str, nbytes: int) -> float:
    """Simulated latency (slowest rank) of one forced (op, algo) call."""
    result = run_program(
        spec_of(mini), None, _osu_program,
        placement=placement_of(mini),
        payload="cost-only", fast_path=True,
        policy=ForcedSelection({op: algo}),
        program_kwargs={"op": op, "nbytes": nbytes},
    )
    return max(result.returns)


@functools.lru_cache(maxsize=None)
def _model_of(mini: str) -> CostModel:
    machine, counts = MINIS[mini]
    spec = spec_of(mini)
    return CostModel(spec, tuple(counts),
                     topology=spec.build_topology(),
                     socket_mode=placement_of(mini).socket_mode)


def measure_model(mini: str, op: str, algo: str, nbytes: int) -> float:
    """Closed-form latency of the same call."""
    return _model_of(mini).predict(op, algo, nbytes)


@functools.lru_cache(maxsize=None)
def _probe_comm(mini: str):
    """A (finished) world communicator for applicability checks."""
    box = []

    def probe(mpi):
        box.append(mpi.world)
        yield from mpi.world.barrier()

    run_program(spec_of(mini), None, probe, placement=placement_of(mini),
                payload="cost-only", fast_path=True)
    return box[0]


def applicable(mini: str, op: str, algo: str) -> bool:
    """Whether (op, algo) is runnable on the mini's communicator shape
    (delegates to the registry's own applicability predicate)."""
    algo_obj = registry.get_algorithm(op, algo)
    req = CollRequest(op=op, nbytes=0, total=0, root=0)
    return algo_obj.applicable(_probe_comm(mini), req)


def divergence(mini: str, op: str, algo: str, nbytes: int) -> tuple:
    """(relative divergence, model seconds, DES seconds)."""
    des = measure_des(mini, op, algo, nbytes)
    mod = measure_model(mini, op, algo, nbytes)
    if des <= 0.0:
        return (abs(mod), mod, des)
    return (abs(mod - des) / des, mod, des)
