"""Smoke-run every example script (they self-check internally)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, args) — arguments shrink the runs to test-suite scale.
RUNS = [
    ("quickstart.py", []),
    ("summa_matmul.py", ["16"]),
    ("bpmf_factorization.py", []),
    ("stencil_halo.py", []),
    ("osu_microbenchmark.py", ["64"]),
    ("power_iteration.py", ["96"]),
    ("model_sweep.py", ["4096", "65536"]),
]


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {name for name, _args in RUNS}


@pytest.mark.parametrize("name,args", RUNS, ids=[r[0] for r in RUNS])
def test_example_runs_clean(name, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"
