"""Tests of the metrics export (repro/metrics.py) and the CLI flags."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.metrics import (
    LATENCY_BUCKETS,
    collect_metrics,
    save_metrics,
    to_prometheus,
)
from repro.mpi import Bytes
from tests.helpers import run


def mixed_program(mpi):
    yield from mpi.world.allgather(Bytes(64))
    yield from mpi.world.bcast(Bytes(256), root=0)
    return mpi.now


def _metrics(detail="phase"):
    result = run(mixed_program, nodes=2, cores=2, trace=detail,
                 payload_mode="model")
    return result, collect_metrics(result)


def test_counters_present():
    result, m = _metrics()
    c = m["counters"]
    assert c["ranks"] == 4
    assert c["elapsed_seconds"] == result.elapsed
    assert c["sent_messages"] == result.sent_messages


def test_per_op_series_and_histograms():
    _result, m = _metrics()
    keys = set(m["ops"])
    assert any(k.startswith("allgather:") for k in keys)
    assert any(k.startswith("bcast:") for k in keys)
    for series in m["ops"].values():
        hist = series["latency"]
        assert hist["count"] == series["calls"]
        # Buckets are cumulative and end at the full count.
        counts = [c for _b, c in hist["buckets"]]
        assert counts == sorted(counts)
        assert counts[-1] <= hist["count"]
        assert len(hist["buckets"]) == len(LATENCY_BUCKETS)


def test_queue_wait_histogram_needs_p2p_detail():
    _result, m = _metrics(detail="phase")
    assert m["queue_wait"] is None
    _result, m = _metrics(detail="p2p")
    assert m["queue_wait"] is not None and m["queue_wait"]["count"] > 0


def test_profile_section_matches_comm_summary():
    result, m = _metrics()
    assert m["profile"] == result.comm_summary()


def test_metrics_without_trace():
    result = run(mixed_program, nodes=2, cores=2, payload_mode="model")
    m = collect_metrics(result)
    assert m["ops"] == {} and m["queue_wait"] is None
    assert m["counters"]["ranks"] == 4


def test_prometheus_rendering():
    _result, m = _metrics(detail="p2p")
    text = to_prometheus(m)
    assert text.endswith("\n")
    assert "repro_ranks 4" in text
    assert 'repro_collective_calls_total{op="allgather"' in text
    assert 'le="+Inf"' in text
    assert "repro_queue_wait_seconds_count" in text
    # Every histogram's +Inf bucket equals its _count.
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if 'le="+Inf"' in line:
            count = line.rsplit(" ", 1)[1]
            total = next(
                ln for ln in lines[i:] if "_count" in ln
            ).rsplit(" ", 1)[1]
            assert count == total


def test_save_metrics_json_and_prom(tmp_path):
    _result, m = _metrics()
    jpath = tmp_path / "m.json"
    ppath = tmp_path / "m.prom"
    save_metrics(m, str(jpath))
    save_metrics(m, str(ppath))
    assert json.loads(jpath.read_text())["counters"]["ranks"] == 4
    assert ppath.read_text().startswith("# TYPE")


def test_cli_trace_and_metrics_out(tmp_path, capsys):
    tpath = tmp_path / "trace.json"
    mpath = tmp_path / "metrics.json"
    rc = cli_main([
        "--trace-out", str(tpath), "--metrics-out", str(mpath),
        "--trace-nodes", "2", "--trace-ppn", "4",
        "--trace-elements", "128",
    ])
    assert rc == 0
    doc = json.loads(tpath.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    metrics = json.loads(mpath.read_text())
    assert any(k.startswith("hy_allgather:") for k in metrics["ops"])
    out = capsys.readouterr().out
    assert "critical rank:" in out
    assert "bridge_exchange" in out


def test_cli_pure_variant(tmp_path):
    mpath = tmp_path / "metrics.prom"
    rc = cli_main([
        "--metrics-out", str(mpath), "--trace-variant", "pure",
        "--trace-nodes", "2", "--trace-ppn", "4",
        "--trace-elements", "128", "--quiet",
    ])
    assert rc == 0
    assert "repro_collective" in mpath.read_text()
