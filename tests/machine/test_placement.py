"""Unit tests for rank placements."""

from __future__ import annotations

import pytest

from repro.machine import Placement


class TestBlock:
    def test_smp_style(self):
        p = Placement.block(3, 4)
        assert p.num_ranks == 12
        assert p.node_of(0) == 0
        assert p.node_of(4) == 1
        assert p.node_of(11) == 2
        assert p.is_smp_style()

    def test_leaders_are_lowest_ranks(self):
        p = Placement.block(3, 4)
        assert p.leaders() == [0, 4, 8]
        assert p.is_leader(4)
        assert not p.is_leader(5)

    def test_slots(self):
        p = Placement.block(2, 3)
        assert [p.slot_of(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_node_sorted_is_identity(self):
        p = Placement.block(3, 2)
        assert p.node_sorted_ranks() == list(range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            Placement.block(0, 4)
        with pytest.raises(ValueError):
            Placement.block(2, 0)


class TestRoundRobin:
    def test_cyclic_mapping(self):
        p = Placement.round_robin(3, 2)
        assert [p.node_of(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]
        assert not p.is_smp_style()

    def test_leaders(self):
        p = Placement.round_robin(3, 2)
        assert p.leaders() == [0, 1, 2]

    def test_node_sorted_groups_by_node(self):
        p = Placement.round_robin(2, 3)
        # node 0: ranks 0,2,4; node 1: ranks 1,3,5
        assert p.node_sorted_ranks() == [0, 2, 4, 1, 3, 5]


class TestIrregular:
    def test_paper_population(self):
        p = Placement.irregular([24] * 42 + [16])
        assert p.num_ranks == 1024
        assert p.counts() == [24] * 42 + [16]
        assert p.is_smp_style()

    def test_ranks_on(self):
        p = Placement.irregular([2, 3])
        assert p.ranks_on(0) == [0, 1]
        assert p.ranks_on(1) == [2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            Placement.irregular([])
        with pytest.raises(ValueError):
            Placement.irregular([2, 0])


class TestExplicit:
    def test_arbitrary_mapping(self):
        p = Placement.explicit([1, 0, 1, 0])
        assert p.node_of(0) == 1
        assert p.ranks_on(0) == [1, 3]
        assert p.leader_of(0) == 1
        assert not p.is_smp_style()

    def test_same_node(self):
        p = Placement.explicit([0, 1, 0])
        assert p.same_node(0, 2)
        assert not p.same_node(0, 1)

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            # node 1 referenced implicitly (max=2) but hosts nobody
            Placement.explicit([0, 2, 0])


class TestEquality:
    def test_eq_and_hash(self):
        a = Placement.block(2, 3)
        b = Placement.block(2, 3)
        c = Placement.round_robin(2, 3)
        assert a == b and hash(a) == hash(b)
        assert a != c
