"""Unit tests for the network cost model."""

from __future__ import annotations

import pytest

from repro.machine import FlatTopology, NetworkModel, NetworkSpec
from repro.simulator import Engine


def make_net(engine, num_nodes=4, **kw):
    defaults = dict(
        alpha=1.0e-6,
        hop_latency=0.0,
        bandwidth=1.0e9,
        nic_streams=1,
        eager_threshold=4096,
    )
    defaults.update(kw)
    return NetworkModel(engine, NetworkSpec(**defaults), num_nodes=num_nodes)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(alpha=-1.0).validate()
        with pytest.raises(ValueError):
            NetworkSpec(bandwidth=0.0).validate()
        with pytest.raises(ValueError):
            NetworkSpec(nic_streams=0).validate()
        NetworkSpec().validate()  # defaults are valid


class TestLatency:
    def test_latency_includes_hops(self, engine):
        net = make_net(engine, hop_latency=1.0e-7)
        # Flat topology: 2 hops between distinct nodes.
        assert net.latency(0, 1) == pytest.approx(1.0e-6 + 2.0e-7)

    def test_uncontended_time_eager(self, engine):
        net = make_net(engine)
        t = net.uncontended_time(0, 1, 1000)
        assert t == pytest.approx(1.0e-6 + 1000 / 1.0e9)

    def test_uncontended_time_rendezvous_adds_handshake(self, engine):
        net = make_net(engine)
        small = net.uncontended_time(0, 1, 4096)
        big = net.uncontended_time(0, 1, 4097)
        # Extra round trip (2 * latency) for the rendezvous message.
        assert big - small == pytest.approx(2.0e-6 + 1 / 1.0e9, rel=1e-3)


class TestTransmit:
    def test_transfer_completes_at_model_time(self, engine):
        net = make_net(engine)
        done = []

        def prog():
            yield from net.transmit(0, 1, 1000)
            done.append(engine.now)

        engine.spawn(prog())
        engine.run()
        assert done == [pytest.approx(1.0e-6 + 1.0e-6)]  # alpha + 1000B/1GB/s

    def test_same_node_rejected(self, engine):
        net = make_net(engine)
        with pytest.raises(ValueError):
            # generator raises at first step
            list(net.transmit(2, 2, 10))

    def test_nic_serializes_concurrent_sends(self, engine):
        net = make_net(engine)
        done = []

        def prog(dst):
            yield from net.transmit(0, dst, 1000)
            done.append((dst, engine.now))

        engine.spawn(prog(1))
        engine.spawn(prog(2))
        engine.run()
        t1 = 1.0e-6 + 1.0e-6
        # The second send waits for the first's TX serialization (1 us).
        assert done[0] == (1, pytest.approx(t1))
        assert done[1] == (2, pytest.approx(t1 + 1.0e-6))

    def test_stats_recorded(self, engine):
        net = make_net(engine)

        def prog():
            yield from net.transmit(0, 1, 500)
            yield from net.transmit(0, 2, 8192)  # rendezvous

        engine.spawn(prog())
        engine.run()
        assert net.stats.messages == 2
        assert net.stats.bytes == 500 + 8192
        assert net.stats.rendezvous_messages == 1
        assert net.stats.per_pair[(0, 1)] == (1, 500.0)

    def test_topology_capacity_checked(self, engine):
        with pytest.raises(ValueError):
            NetworkModel(
                engine, NetworkSpec(), num_nodes=8,
                topology=FlatTopology(4),
            )


class TestLinkContention:
    def test_detailed_mode_builds_link_channels(self, engine):
        from repro.machine import DragonflyTopology

        topo = DragonflyTopology(8, nodes_per_router=2, routers_per_group=2)
        net = NetworkModel(
            engine, NetworkSpec(), num_nodes=8, topology=topo,
            link_contention=True,
        )
        assert len(net._links) == topo.graph.number_of_edges()

    def test_link_contention_slows_shared_paths(self):
        from repro.machine import FatTreeTopology

        def run(contended: bool) -> float:
            engine = Engine()
            topo = FatTreeTopology(4, leaf_radix=2, num_spines=1)
            net = NetworkModel(
                engine,
                NetworkSpec(alpha=0.0, bandwidth=100.0, nic_streams=1),
                num_nodes=4,
                topology=topo,
                link_contention=contended,
            )
            finish = []

            def prog(src, dst):
                yield from net.transmit(src, dst, 100)
                finish.append(engine.now)

            # Two transfers from different sources crossing the same
            # leaf-spine links toward different destinations.
            engine.spawn(prog(0, 2))
            engine.spawn(prog(1, 3))
            engine.run()
            return max(finish)

        assert run(True) > run(False)
