"""Tests for the OS-noise injection model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.noise import NoiseModel
from repro.machine import testing_machine as make_testing_spec
from repro.mpi import run_program


def noisy_job(noise, reps=30):
    def prog(mpi):
        for _ in range(reps):
            yield mpi.compute(1e-5)
            yield from mpi.world.barrier()
        return mpi.now

    return run_program(
        make_testing_spec(2, 4), 8, prog,
        payload_mode="model", noise=noise,
    )


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(jitter=-1)
        with pytest.raises(ValueError):
            NoiseModel(detour_rate=2.0)
        with pytest.raises(ValueError):
            NoiseModel(detour_seconds=-1)

    def test_perturb_never_shrinks(self):
        nm = NoiseModel(jitter=0.1, detour_rate=0.5)
        rng = nm.stream_for(0)
        for _ in range(100):
            assert nm.perturb(1e-5, rng) >= 1e-5

    def test_zero_charge_untouched(self):
        nm = NoiseModel()
        assert nm.perturb(0.0, nm.stream_for(0)) == 0.0

    def test_streams_differ_per_rank(self):
        nm = NoiseModel(jitter=0.1)
        a = nm.perturb(1.0, nm.stream_for(0))
        b = nm.perturb(1.0, nm.stream_for(1))
        assert a != b


class TestNoiseInJobs:
    def test_noise_slows_the_job(self):
        clean = noisy_job(None)
        noisy = noisy_job(NoiseModel(jitter=0.05, detour_rate=0.05))
        assert max(noisy.returns) > max(clean.returns)

    def test_noisy_runs_are_reproducible(self):
        nm = NoiseModel(jitter=0.05, detour_rate=0.05, seed=7)
        a = noisy_job(nm)
        b = noisy_job(NoiseModel(jitter=0.05, detour_rate=0.05, seed=7))
        assert a.returns == b.returns

    def test_different_seeds_change_timing(self):
        a = noisy_job(NoiseModel(seed=1, jitter=0.05))
        b = noisy_job(NoiseModel(seed=2, jitter=0.05))
        assert a.returns != b.returns

    def test_barriers_amplify_noise(self):
        # With barriers, the job pays the per-step MAX of the ranks'
        # noise; without them, only each rank's own sum.  The slowdown
        # factor (noisy/clean) must be larger in the barrier version.
        def prog_barrier(mpi):
            for _ in range(40):
                yield mpi.compute(1e-5)
                yield from mpi.world.barrier()
            return mpi.now

        def prog_free(mpi):
            for _ in range(40):
                yield mpi.compute(1e-5)
            return mpi.now

        nm = NoiseModel(jitter=0.0, detour_rate=0.2, detour_seconds=5e-5)

        def slowdown(prog):
            spec = make_testing_spec(2, 4)
            clean = run_program(spec, 8, prog, payload_mode="model")
            noisy = run_program(spec, 8, prog, payload_mode="model",
                                noise=nm)
            return max(noisy.returns) / max(clean.returns)

        assert slowdown(prog_barrier) > slowdown(prog_free)
