"""Unit tests for node/machine models and presets."""

from __future__ import annotations

import pytest

from repro.machine import (
    ComputeModel,
    Machine,
    MachineSpec,
    NodeSpec,
    Placement,
    hazel_hen,
    vulcan,
)
from repro.machine import testing_machine as make_testing_machine
from repro.simulator import Engine


class TestSpecs:
    def test_node_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0).validate()
        with pytest.raises(ValueError):
            NodeSpec(mem_bandwidth=0).validate()
        NodeSpec().validate()

    def test_machine_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(name="x", num_nodes=0).validate()
        with pytest.raises(ValueError):
            MachineSpec(name="x", num_nodes=1, topology_kind="ring").validate()

    def test_topology_factory(self):
        assert (
            hazel_hen(8).build_topology().__class__.__name__
            == "DragonflyTopology"
        )
        assert (
            vulcan(8).build_topology().__class__.__name__
            == "FatTreeTopology"
        )
        assert (
            make_testing_machine(2).build_topology().__class__.__name__
            == "FlatTopology"
        )


class TestPresets:
    def test_paper_node_architecture(self):
        # Both clusters use 24-core Haswell nodes (paper §5).
        for spec in (hazel_hen(4), vulcan(4)):
            assert spec.node.cores == 24
        # They differ in the network.
        assert hazel_hen(4).network.alpha < vulcan(4).network.alpha
        assert hazel_hen(4).network.bandwidth > vulcan(4).network.bandwidth

    def test_testing_machine_round_numbers(self):
        spec = make_testing_machine(2, 4)
        assert spec.network.alpha == 1.0e-6
        assert spec.network.bandwidth == 1.0e9


class TestMachine:
    def test_memory_copy_cost(self, engine, tiny_spec):
        # testing machine: mem_bw 10 GB/s over 2 streams -> 5 GB/s/stream;
        # one copy reads+writes -> 2*n bytes.
        m = Machine(engine, tiny_spec)
        done = []

        def prog():
            yield from m.memory_copy(0, 5000)
            done.append(engine.now)

        engine.spawn(prog())
        engine.run()
        assert done == [pytest.approx(2 * 5000 / 5.0e9)]

    def test_intra_message_adds_latency_and_two_copies(self, engine, tiny_spec):
        m = Machine(engine, tiny_spec)
        done = []

        def prog():
            yield from m.intra_message(0, 5000)
            done.append(engine.now)

        engine.spawn(prog())
        engine.run()
        expected = 1.0e-7 + 2 * (2 * 5000 / 5.0e9)
        assert done == [pytest.approx(expected)]

    def test_memory_contention_queues(self, engine, tiny_spec):
        # 2 streams: the third concurrent copy waits.
        m = Machine(engine, tiny_spec)
        done = []

        def prog(tag):
            yield from m.memory_copy(0, 5000)
            done.append(tag)

        for tag in range(3):
            engine.spawn(prog(tag))
        engine.run()
        per_copy = 2 * 5000 / 5.0e9
        assert engine.now == pytest.approx(2 * per_copy)

    def test_shared_touch_single_pass(self, engine, tiny_spec):
        m = Machine(engine, tiny_spec)

        def prog():
            yield from m.shared_touch(1, 5000)

        engine.spawn(prog())
        engine.run()
        assert engine.now == pytest.approx(5000 / 5.0e9)

    def test_default_placement_fills_nodes(self, engine, tiny_spec):
        m = Machine(engine, tiny_spec)
        p = m.default_placement(6)
        assert p.counts() == [4, 2]
        with pytest.raises(ValueError):
            m.default_placement(100)

    def test_placement_binding(self, engine, tiny_spec):
        m = Machine(engine, tiny_spec)
        with pytest.raises(RuntimeError):
            _ = m.placement
        p = Placement.block(2, 4)
        m.bind_placement(p)
        assert m.placement is p
        with pytest.raises(ValueError):
            m.bind_placement(Placement.block(5, 2))

    def test_intra_accounting(self, engine, tiny_spec):
        m = Machine(engine, tiny_spec)

        def prog():
            yield from m.intra_message(0, 100)

        engine.spawn(prog())
        engine.run()
        assert m.intra_copies == 2
        assert m.intra_bytes == 200


class TestComputeModel:
    def test_flops_time_uses_efficiency(self):
        cm = ComputeModel(core_peak_flops=10.0e9)
        assert cm.flops_time(1e9, "gemm") == pytest.approx(1 / (10 * 0.85))
        assert cm.flops_time(1e9, "unknown-kind") == pytest.approx(
            1 / (10 * 0.25)
        )

    def test_gemm_time_small_blocks_less_efficient(self):
        cm = ComputeModel()
        # Same flop count per element ratio, worse efficiency when tiny.
        t_small = cm.gemm_time(8, 8, 8) / (2 * 8**3)
        t_big = cm.gemm_time(128, 128, 128) / (2 * 128**3)
        assert t_small > t_big

    def test_memory_time(self):
        cm = ComputeModel(core_mem_bandwidth=2.0e9)
        assert cm.memory_time(2.0e9) == pytest.approx(1.0)

    def test_negative_rejected(self):
        cm = ComputeModel()
        with pytest.raises(ValueError):
            cm.flops_time(-1)
        with pytest.raises(ValueError):
            cm.memory_time(-1)

    def test_with_efficiency_override(self):
        cm = ComputeModel().with_efficiency(gemm=0.5)
        assert cm.efficiency["gemm"] == 0.5
        assert ComputeModel().efficiency["gemm"] == 0.85
