"""Flat-machine equivalence of the socket/NUMA tier.

The socket tier and pluggable transports are strictly additive: a
machine with ``sockets=1`` and the default ``shm_two_copy`` transport
must behave *bit-identically* to the pre-socket flat node model —
same event counts, same virtual-time latencies, same span streams.
These tests pin that contract on the Fig 7/9/10 miniatures used by
``tests/bench/test_perf_equivalence.py``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import pytest

from repro.bench.osu import (
    hybrid_allgather_program,
    pure_allgather_program,
)
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen, hazel_hen_flat
from repro.mpi import run_program

# (id, nodes-spec, placement, elements, variant, program options) —
# the same miniatures the fast-path equivalence suite uses.
CONFIGS = [
    ("fig7-hybrid", 1, Placement.block(1, 8), 64, "hybrid", {}),
    ("fig7-pure", 1, Placement.block(1, 8), 64, "pure", {}),
    ("fig9-hybrid", 2, Placement.block(2, 6), 512, "hybrid", {}),
    ("fig9-pure", 2, Placement.block(2, 6), 512, "pure", {}),
    ("fig10-hybrid", 3, Placement.irregular([6, 6, 4]), 128, "hybrid", {}),
    ("fig10-pure", 3, Placement.irregular([6, 6, 4]), 128, "pure",
     {"irregular": True}),
]


def _explicit_socket_fields(spec):
    """The same machine with every socket/transport field spelled out.

    ``sockets=1`` makes the cross-socket link unreachable, so even
    absurd xsocket parameters must not change a single event.
    """
    return replace(
        spec,
        node=replace(
            spec.node,
            sockets=1,
            transport="shm_two_copy",
            xsocket_bandwidth=1.0e3,   # deliberately pathological:
            xsocket_streams=1,         # must never be charged
            xsocket_latency=1.0,
        ),
    )


def _run(spec, placement, elements, variant, options):
    program = (hybrid_allgather_program if variant == "hybrid"
               else pure_allgather_program)
    result = run_program(
        spec, None, program,
        placement=placement,
        payload="cost-only",
        fast_path=True,
        trace="p2p",
        program_kwargs={"nbytes_per_rank": elements * 8, **options},
    )
    span_hash = hashlib.sha256(
        json.dumps(result.trace, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return result, span_hash


def _assert_bit_identical(ref, ref_hash, result, span_hash):
    assert result.events_processed == ref.events_processed
    assert result.returns == ref.returns
    assert result.elapsed == ref.elapsed
    assert result.finish_times == ref.finish_times
    assert result.sent_messages == ref.sent_messages
    assert result.sent_bytes == ref.sent_bytes
    assert result.network_bytes == ref.network_bytes
    assert span_hash == ref_hash


@pytest.fixture(scope="module")
def reference():
    cache: dict[str, tuple] = {}

    def get(cfg):
        cfg_id, nodes, placement, elements, variant, options = cfg
        if cfg_id not in cache:
            cache[cfg_id] = _run(
                hazel_hen(nodes), placement, elements, variant, options
            )
        return cache[cfg_id]

    return get


@pytest.mark.parametrize("cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_explicit_socket_fields_are_inert_on_flat_nodes(cfg, reference):
    """sockets=1 + shm_two_copy with explicit (even pathological)
    xsocket parameters reproduces the default machine exactly."""
    ref, ref_hash = reference(cfg)
    _cfg_id, nodes, placement, elements, variant, options = cfg
    result, span_hash = _run(
        _explicit_socket_fields(hazel_hen(nodes)),
        placement, elements, variant, options,
    )
    _assert_bit_identical(ref, ref_hash, result, span_hash)


@pytest.mark.parametrize("cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_flat_alias_is_bit_identical(cfg, reference):
    """hazel_hen_flat is the historical flat model, verbatim."""
    ref, ref_hash = reference(cfg)
    _cfg_id, nodes, placement, elements, variant, options = cfg
    result, span_hash = _run(
        hazel_hen_flat(nodes), placement, elements, variant, options
    )
    _assert_bit_identical(ref, ref_hash, result, span_hash)


@pytest.mark.parametrize("socket_mode", ["scatter", "balanced"])
@pytest.mark.parametrize(
    "cfg", [CONFIGS[2], CONFIGS[4]], ids=["fig9-hybrid", "fig10-hybrid"]
)
def test_socket_mode_is_noop_on_flat_nodes(cfg, socket_mode, reference):
    """Placement socket modes only re-map slots to sockets; with one
    socket per node every mode degenerates to the same (only) socket."""
    ref, ref_hash = reference(cfg)
    _cfg_id, nodes, placement, elements, variant, options = cfg
    result, span_hash = _run(
        hazel_hen(nodes), placement.with_socket_mode(socket_mode),
        elements, variant, options,
    )
    _assert_bit_identical(ref, ref_hash, result, span_hash)
