"""Unit tests for network topologies."""

from __future__ import annotations

import itertools

import pytest

from repro.machine import (
    DragonflyTopology,
    FatTreeTopology,
    FlatTopology,
    TorusTopology,
)


class TestFlat:
    def test_same_node_zero_hops(self):
        topo = FlatTopology(8)
        assert topo.hops(3, 3) == 0

    def test_uniform_hops(self):
        topo = FlatTopology(8, uniform_hops=2)
        assert all(
            topo.hops(a, b) == 2
            for a, b in itertools.combinations(range(8), 2)
        )

    def test_bounds_checked(self):
        topo = FlatTopology(4)
        with pytest.raises(ValueError):
            topo.hops(0, 4)
        with pytest.raises(ValueError):
            topo.hops(-1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatTopology(0)
        with pytest.raises(ValueError):
            FlatTopology(4, uniform_hops=0)


class TestDragonfly:
    def test_same_router_one_hop(self):
        topo = DragonflyTopology(16, nodes_per_router=4, routers_per_group=2)
        # nodes 0-3 share router 0
        assert topo.hops(0, 3) == 1

    def test_same_group_two_hops(self):
        topo = DragonflyTopology(16, nodes_per_router=4, routers_per_group=2)
        # nodes 0 (router 0) and 4 (router 1), same group: local link
        assert topo.hops(0, 4) == 2

    def test_cross_group_more_hops(self):
        topo = DragonflyTopology(32, nodes_per_router=4, routers_per_group=2)
        # node 0 in group 0, node 16 in group 2
        assert topo.hops(0, 16) >= 2

    def test_symmetry(self):
        topo = DragonflyTopology(24, nodes_per_router=4, routers_per_group=2)
        for a, b in itertools.combinations(range(0, 24, 5), 2):
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_diameter_bounded(self):
        # Dragonfly minimal routing: local-global-local <= 5 hops.
        topo = DragonflyTopology(64, nodes_per_router=4, routers_per_group=4)
        assert topo.diameter_hops() <= 5

    def test_path_edges_connect(self):
        topo = DragonflyTopology(32, nodes_per_router=4, routers_per_group=2)
        path = topo.path(0, 31)
        assert path, "distinct routers must have a path"
        for (a, b), (c, _d) in itertools.pairwise(path):
            assert b == c, "path edges must chain"


class TestFatTree:
    def test_same_leaf(self):
        topo = FatTreeTopology(48, leaf_radix=24, num_spines=2)
        assert topo.hops(0, 23) == 1  # same leaf switch

    def test_cross_leaf(self):
        topo = FatTreeTopology(48, leaf_radix=24, num_spines=2)
        assert topo.hops(0, 24) == 3  # leaf-spine-leaf

    def test_num_leaves(self):
        topo = FatTreeTopology(50, leaf_radix=24)
        assert topo.num_leaves == 3


class TestTorus:
    def test_coords_roundtrip(self):
        topo = TorusTopology((3, 4))
        assert topo.num_nodes == 12
        assert topo.coords(0) == (0, 0)
        assert topo.coords(5) == (1, 1)
        assert topo.coords(11) == (2, 3)

    def test_wraparound_shortens_path(self):
        topo = TorusTopology((8,))
        # 0 -> 7 wraps: 1 dimension hop + injection
        assert topo.hops(0, 7) == 2
        assert topo.hops(0, 4) == 5

    def test_multidim_manhattan(self):
        topo = TorusTopology((4, 4))
        # (0,0) -> (1,1): 2 dim hops + 1 injection
        assert topo.hops(0, 5) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusTopology(())
        with pytest.raises(ValueError):
            TorusTopology((0, 4))

    def test_matches_graph_distance(self):
        topo = TorusTopology((3, 3))
        import networkx as nx

        for a in range(9):
            for b in range(9):
                if a == b:
                    continue
                expected = (
                    nx.shortest_path_length(
                        topo.graph, topo.attachment(a), topo.attachment(b)
                    )
                    + 1
                )
                assert topo.hops(a, b) == expected, (a, b)
