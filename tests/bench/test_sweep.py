"""Sweep orchestrator + content-addressed cache (repro.bench.sweep).

Pins the contracts docs/sweeps.md promises:

* parallel and serial execution produce bit-identical virtual-time
  results (the simulator is deterministic; process boundaries are
  invisible);
* a cache hit answers without simulating (counters prove it);
* the cache key covers every input that can change an answer — machine
  preset, transport, point axes, engine version — and nothing changes
  silently;
* a worker that exceeds its timeout or raises becomes a structured
  failure record after bounded retries, never a crashed sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import sweep as sweeplib
from repro.bench.sweep import (
    ResultCache,
    SweepPoint,
    cache_key,
    cached_latency_us,
    evaluate,
    expand_spec,
    figure_points,
    point_name,
    point_seed,
    run_point,
    run_sweep,
)

# A Fig-9 miniature: ppn sweep at fixed node count, hybrid vs pure —
# small enough for process-pool tests to stay fast.
FIG9_MINI = {
    "machine": "hazel_hen",
    "nodes": 2,
    "ppn": [3, 6],
    "elements": 512,
    "variant": ["hybrid", "pure"],
}


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


# ---------------------------------------------------------------------------
# Points, names, keys
# ---------------------------------------------------------------------------

def test_expand_spec_grid_order():
    points = expand_spec(FIG9_MINI)
    assert [point_name(p) for p in points] == [
        "n2x3/512el/hybrid", "n2x3/512el/pure",
        "n2x6/512el/hybrid", "n2x6/512el/pure",
    ]


def test_expand_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown sweep spec key"):
        expand_spec({"machine": "testing", "sizes": [8]})


def test_point_roundtrip_and_seed_stability():
    point = SweepPoint(machine="testing", counts=(4, 2), nbytes=64,
                       variant="pure")
    clone = SweepPoint.from_dict(json.loads(json.dumps(point.to_dict())))
    assert clone == point
    assert point_seed(clone) == point_seed(point)
    assert cache_key(clone) == cache_key(point)


def test_figure_points_match_bench_names():
    names = [name for name, _ in figure_points("fig10", quick=True)]
    assert names == [
        "r160/1el/hybrid", "r160/1el/pure",
        "r160/1024el/hybrid", "r160/1024el/pure",
        "r160/16384el/hybrid", "r160/16384el/pure",
    ]


def test_cache_key_changes_with_machine_and_transport():
    base = SweepPoint(machine="hazel_hen_2s", counts=(4, 4), nbytes=64)
    keys = {
        cache_key(base),
        cache_key(SweepPoint(machine="hazel_hen", counts=(4, 4), nbytes=64)),
        cache_key(SweepPoint(machine="hazel_hen_2s", counts=(4, 4),
                             nbytes=64, transport="cma_single_copy")),
        cache_key(SweepPoint(machine="hazel_hen_2s", counts=(4, 4),
                             nbytes=64, socket_mode="scatter")),
    }
    assert len(keys) == 4


def test_cache_key_changes_with_engine_version(monkeypatch):
    point = SweepPoint(machine="testing", counts=(2, 2), nbytes=64)
    before = cache_key(point)
    monkeypatch.setattr(sweeplib, "ENGINE_VERSION", "999.0-test")
    assert cache_key(point) != before
    # Model points key on MODEL_VERSION instead, so they are unmoved.
    model_point = SweepPoint(machine="testing", counts=(2, 2), nbytes=64,
                             engine="model", algo="shared_window")
    model_before = cache_key(model_point)
    monkeypatch.setattr(sweeplib, "MODEL_VERSION", "999.0-test")
    assert cache_key(model_point) != model_before
    assert cache_key(point) != before  # still keyed on the fake engine


def test_cache_key_changes_with_osu_reps(monkeypatch):
    from repro.bench import osu

    point = SweepPoint(machine="testing", counts=(2, 2), nbytes=64)
    before = cache_key(point)
    monkeypatch.setattr(osu, "DEFAULT_REPS", 5)
    assert cache_key(point) != before


# ---------------------------------------------------------------------------
# Cache semantics
# ---------------------------------------------------------------------------

def test_cache_hit_returns_without_simulating(cache, monkeypatch):
    point = SweepPoint(machine="testing", counts=(2, 2), nbytes=64)
    record, source = evaluate(point, cache)
    assert source == "computed"
    assert cache.puts == 1

    # Second evaluation must be answered purely from the cache: break
    # the engine entry point to prove nothing simulates.
    def boom(_point):
        raise AssertionError("cache hit must not simulate")

    monkeypatch.setattr(sweeplib, "run_point", boom)
    again, source = evaluate(point, cache)
    assert source == "cache"
    assert again == record
    assert cache.hits == 1


def test_run_sweep_counters_cold_then_warm(cache):
    points = expand_spec(FIG9_MINI)
    cold = run_sweep(points, cache=cache)
    assert cold["counters"] == {
        "points": 4, "hits": 0, "misses": 4, "computed": 4,
        "failed": 0, "retried": 0,
    }
    warm = run_sweep(points, cache=cache)
    assert warm["counters"]["hits"] == 4
    assert warm["counters"]["computed"] == 0
    assert warm["points"] == cold["points"]
    assert warm["cache"]["entries"] == 4


def test_corrupt_cache_entry_is_a_miss(cache):
    point = SweepPoint(machine="testing", counts=(2,), nbytes=8)
    record, _ = evaluate(point, cache)
    path = cache._path(cache_key(point))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{ not json")
    again, source = evaluate(point, cache)
    assert source == "computed"
    assert again["latency_us"] == record["latency_us"]


def test_gc(cache):
    for nbytes in (8, 16, 24):
        evaluate(SweepPoint(machine="testing", counts=(2,),
                            nbytes=nbytes), cache)
    assert cache.stats()["entries"] == 3
    assert cache.gc(older_than=3600.0) == 0   # all fresh
    assert cache.gc(everything=True) == 3
    assert cache.stats()["entries"] == 0


def test_cached_latency_us_uses_env_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(sweeplib.CACHE_ENV, str(tmp_path / "env-cache"))
    first = cached_latency_us("testing", (2, 2), 64, "hybrid")
    # Second call must hit the on-disk entry the first one wrote.
    def boom(_point):
        raise AssertionError("env-cache hit must not simulate")

    monkeypatch.setattr(sweeplib, "run_point", boom)
    assert cached_latency_us("testing", (2, 2), 64, "hybrid") == first


# ---------------------------------------------------------------------------
# Determinism: parallel == serial
# ---------------------------------------------------------------------------

def test_parallel_bit_identical_to_serial(cache):
    points = expand_spec(FIG9_MINI)
    serial = run_sweep(points, cache=None)
    parallel = run_sweep(points, cache=cache, workers=2, chunksize=2,
                         timeout=120.0)
    assert parallel["counters"]["failed"] == 0
    for name in serial["points"]:
        a, b = serial["points"][name], parallel["points"][name]
        # Bit-identical virtual-time results (not approximate).
        assert a["latency_us"] == b["latency_us"]
        assert a["latency_s"] == b["latency_s"]
        assert a["events"] == b["events"]
        assert a["seed"] == b["seed"]
    # And the cache now answers the same sweep without computing.
    warm = run_sweep(points, cache=cache, workers=2)
    assert warm["counters"]["hits"] == len(points)
    for name in serial["points"]:
        assert warm["points"][name]["latency_us"] == \
            serial["points"][name]["latency_us"]


def test_model_engine_points(cache):
    point = SweepPoint(machine="hazel_hen", counts=(24, 24), nbytes=4096,
                       variant="hybrid", engine="model")
    record, _ = evaluate(point, cache)
    assert record["engine"] == "model"
    assert record["events"] == 0
    assert record["latency_us"] == pytest.approx(
        record["latency_s"] * 1e6)
    # Keyed on MODEL_VERSION, not ENGINE_VERSION: same point, sim
    # engine, must address a different entry.
    sim_key = cache_key(SweepPoint(machine="hazel_hen", counts=(24, 24),
                                   nbytes=4096, variant="hybrid"))
    assert cache_key(point) != sim_key


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------

def test_serial_error_becomes_failure_record(cache):
    good = SweepPoint(machine="testing", counts=(2,), nbytes=8)
    bad = SweepPoint(machine="testing", counts=(2,), nbytes=16,
                     algo="no_such_algorithm")
    report = run_sweep([good, bad], cache=cache, retries=1)
    assert report["counters"]["failed"] == 1
    assert report["counters"]["computed"] == 1
    (failure,) = report["failures"]
    assert failure["name"] == point_name(bad)
    assert failure["attempts"] == 2          # initial try + 1 retry
    assert "no_such_algorithm" in failure["error"]
    assert point_name(good) in report["points"]


def test_worker_timeout_becomes_failure_record(monkeypatch):
    monkeypatch.setenv(sweeplib.TEST_DELAY_ENV, "5.0")
    slow = SweepPoint(machine="testing", counts=(2,), nbytes=8)
    report = run_sweep([slow], workers=1, timeout=0.2, retries=1)
    assert report["counters"]["failed"] == 1
    (failure,) = report["failures"]
    assert failure["error"] == "timeout"
    assert failure["attempts"] == 2
    assert report["points"] == {}


def test_worker_error_becomes_failure_record():
    bad = SweepPoint(machine="testing", counts=(2,), nbytes=16,
                     algo="no_such_algorithm")
    report = run_sweep([bad], workers=1, retries=0)
    assert report["counters"]["failed"] == 1
    assert report["failures"][0]["attempts"] == 1


def test_duplicate_point_names_rejected():
    point = SweepPoint(machine="testing", counts=(2,), nbytes=8)
    with pytest.raises(ValueError, match="collide"):
        run_sweep([point, point])


# ---------------------------------------------------------------------------
# Perf-harness and BENCH integration
# ---------------------------------------------------------------------------

def test_perf_harness_warms_the_sweep_cache(cache):
    from repro.bench.perf import run_perf

    doc = run_perf("fig7", progress=False, cache=cache)
    assert cache.puts == len(doc["points"])
    # The sweep path must now answer fig7 entirely from cache, with
    # identical virtual-time numbers.
    points = figure_points("fig7")
    report = run_sweep([p for _n, p in points], cache=cache)
    assert report["counters"]["hits"] == len(points)
    for name, _p in points:
        assert report["points"][name]["latency_us"] == \
            doc["points"][name]["latency_us"]
        assert report["points"][name]["events"] == \
            doc["points"][name]["events"]


def test_check_against_bench(tmp_path, cache):
    from repro.bench.sweep import check_against_bench

    points = figure_points("fig7")
    report = run_sweep([p for _n, p in points], cache=cache)
    bench = {"label": "fig7",
             "points": {n: dict(report["points"][n]) for n, _p in points}}
    with open(tmp_path / "BENCH_fig7.json", "w", encoding="utf-8") as fh:
        json.dump(bench, fh)
    assert check_against_bench(report, "fig7", str(tmp_path)) == []
    # A diverging committed latency must be flagged.
    bench["points"]["n1x24/1el/hybrid"]["latency_us"] += 1.0
    with open(tmp_path / "BENCH_fig7.json", "w", encoding="utf-8") as fh:
        json.dump(bench, fh)
    problems = check_against_bench(report, "fig7", str(tmp_path))
    assert len(problems) == 1 and "n1x24/1el/hybrid" in problems[0]


def test_sweep_metrics_export(cache):
    from repro.metrics import sweep_metrics, to_prometheus

    report = run_sweep(expand_spec(FIG9_MINI), cache=cache)
    metrics = sweep_metrics(report)
    assert metrics["counters"]["sweep_points"] == 4
    assert metrics["counters"]["sweep_cache_misses"] == 4
    prom = to_prometheus(metrics)
    assert "repro_sweep_points 4" in prom
    assert "repro_sweep_cache_misses 4" in prom


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_run_query_stats_gc(tmp_path, capsys):
    from repro.bench.sweep import main

    cache_dir = str(tmp_path / "cache")
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "machine": "testing", "nodes": 2, "ppn": 2, "elements": [1, 8],
    }))
    out_path = tmp_path / "report.json"
    assert main(["run", "--spec", str(spec_path), "--cache", cache_dir,
                 "--out", str(out_path), "--quiet"]) == 0
    report = json.loads(out_path.read_text())
    assert report["counters"] == {
        "points": 2, "hits": 0, "misses": 2, "computed": 2,
        "failed": 0, "retried": 0,
    }
    capsys.readouterr()

    # Warm re-run: 100% hit rate.
    assert main(["run", "--spec", str(spec_path), "--cache", cache_dir,
                 "--quiet"]) == 0
    assert "2 cache hits (100%)" in capsys.readouterr().out

    # query --cache-only answers from disk.
    assert main(["query", "--machine", "testing", "--nodes", "2",
                 "--ppn", "2", "--elements", "8", "--cache", cache_dir,
                 "--cache-only"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["source"] == "cache"
    assert doc["result"]["latency_us"] > 0

    assert main(["stats", "--cache", cache_dir]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 2

    assert main(["gc", "--cache", cache_dir, "--all"]) == 0
    assert "removed 2 entries" in capsys.readouterr().out

    # After gc, --cache-only misses and exits non-zero.
    assert main(["query", "--machine", "testing", "--nodes", "2",
                 "--ppn", "2", "--elements", "8", "--cache", cache_dir,
                 "--cache-only"]) == 1
