"""Tests for report generation, trace tooling, and render round-trip."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import FigureResult
from repro.bench.report import (
    SHAPE_CHECKS,
    figure_section,
    parse_rendered,
    render_report,
)
from repro.mpi import Bytes, run_program
from repro.machine import testing_machine as make_testing_spec
from repro.trace import (
    format_timeline,
    summarize,
    to_chrome_trace,
)


def toy_result(figure_id="fig12", rows=None):
    rows = rows or [
        {"cores": 24, "ratio": 1.02, "ori_tt_ms": 100.0, "hy_tt_ms": 98.0},
        {"cores": 240, "ratio": 1.08, "ori_tt_ms": 20.0, "hy_tt_ms": 18.5},
    ]
    return FigureResult(
        figure_id=figure_id,
        title="Fig 12 — BPMF total-time ratio Ori/Hy, 24..1024 cores",
        columns=list(rows[0]),
        rows=rows,
        mode="quick",
        wall_seconds=0.1,
    )


class TestShapeChecks:
    def test_every_figure_has_a_check(self):
        from repro.bench.figures import FIGURES

        assert set(SHAPE_CHECKS) == set(FIGURES)

    def test_fig12_check_passes_on_good_shape(self):
        ok, _ = SHAPE_CHECKS["fig12"].verdict(toy_result())
        assert ok

    def test_fig12_check_fails_on_flat_ratio(self):
        bad = toy_result(rows=[
            {"cores": 24, "ratio": 1.08, "ori_tt_ms": 100.0,
             "hy_tt_ms": 92.0},
            {"cores": 240, "ratio": 1.02, "ori_tt_ms": 20.0,
             "hy_tt_ms": 19.6},
        ])
        ok, _ = SHAPE_CHECKS["fig12"].verdict(bad)
        assert not ok

    def test_check_errors_reported_not_raised(self):
        broken = toy_result(rows=[{"cores": 1}])  # missing 'ratio'
        ok, msg = SHAPE_CHECKS["fig12"].verdict(broken)
        assert not ok and "errored" in msg


class TestSections:
    def test_section_contains_verdict_and_table(self):
        text = figure_section(toy_result(), "ratio rises slowly")
        assert "REPRODUCED" in text
        assert "| cores |" in text or "| cores " in text
        assert "ratio rises slowly" in text

    def test_render_report_joins_sections(self):
        text = render_report(
            [(toy_result(), "claim A")], header="# Results"
        )
        assert text.startswith("# Results")
        assert "claim A" in text


class TestRenderRoundTrip:
    def test_parse_rendered_recovers_rows(self):
        from repro.bench.figures import get_figure

        result = get_figure("abl_placement").run(mode="quick")
        parsed = parse_rendered(result.render())
        assert len(parsed) == 1
        back = parsed[0]
        assert back.figure_id == "abl_placement"
        assert back.columns == result.columns
        assert len(back.rows) == len(result.rows)
        for a, b in zip(back.rows, result.rows):
            for col in result.columns:
                assert a[col] == pytest.approx(b[col], rel=0.01)

    def test_parse_multiple_blocks(self):
        text = toy_result().render() + "\n\n" + toy_result().render()
        parsed = parse_rendered(text)
        assert len(parsed) == 2


class TestTraceTools:
    @pytest.fixture()
    def trace(self):
        def prog(mpi):
            yield from mpi.world.allgather(Bytes(64))
            yield from mpi.world.barrier()
            return None

        result = run_program(
            make_testing_spec(2, 2), 4, prog,
            trace=True, payload_mode="model",
        )
        return result.trace

    def test_summarize_counts(self, trace):
        summary = summarize(trace)
        allgather_keys = [k for k in summary if k[0] == "allgather"]
        assert allgather_keys
        total_calls = sum(v["calls"] for v in summary.values())
        assert total_calls == len(trace)

    def test_chrome_trace_is_json_serializable(self, trace):
        blob = to_chrome_trace(trace)
        text = json.dumps(blob)
        assert "traceEvents" in blob
        assert "allgather" in text

    def test_timeline_renders(self, trace):
        text = format_timeline(trace)
        assert "rank" in text.splitlines()[0]
        assert len(text.splitlines()) > 2

    def test_empty_timeline(self):
        assert format_timeline([]) == "(empty trace)"
