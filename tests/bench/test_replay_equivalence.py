"""Replay-cache equivalence: replay on must be invisible in virtual time.

The replay cache (:mod:`repro.mpi.collectives.replay`) is a pure
wall-clock optimization: per-rank virtual-time latencies, traffic
counters, and the span stream must be *bit-identical* with the cache on
or off, on every figure miniature, machine model (flat and 2-socket
nodes), and engine path.  These tests pin that contract, plus the
safety side: workloads the quiescence predicate must veto (non-blocking
collectives, overlap) are never replayed, and the verify mode
(``REPRO_REPLAY_VERIFY=1``) passes cleanly on a replaying run.
"""

from __future__ import annotations

import pytest

from repro.bench.osu import (
    hybrid_allgather_program,
    pure_allgather_program,
)
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen, hazel_hen_2s
from repro.mpi import run_program
from repro.mpi.collectives import replay as replaylib

REPS = 6

# (id, nodes, placement, elements, variant, program options) —
# miniatures of the repro-perf Fig 7/9/10 configs.
CONFIGS = [
    ("fig7-pure", 1, Placement.block(1, 8), 64, "pure", {}),
    ("fig7-hybrid", 1, Placement.block(1, 8), 64, "hybrid", {}),
    ("fig9-pure", 2, Placement.block(2, 6), 512, "pure", {}),
    ("fig9-hybrid", 2, Placement.block(2, 6), 512, "hybrid", {}),
    ("fig10-pure", 3, Placement.irregular([6, 6, 4]), 128, "pure",
     {"irregular": True}),
    ("fig10-hybrid", 3, Placement.irregular([6, 6, 4]), 128, "hybrid", {}),
]

MACHINES = [
    pytest.param(hazel_hen, id="flat"),
    pytest.param(hazel_hen_2s, id="2socket"),
]

PATHS = [
    pytest.param(True, id="fast"),
    pytest.param(False, id="legacy"),
]

#: Span fields that may legitimately differ under replay: span ids and
#: parent links are allocation-order artifacts, and the ``replayed``
#: marker tag is the one *intentional* difference.
_DROP = ("sid", "parent", "replayed")


def _strip(records):
    """Normalize a span stream for comparison: drop allocation-order
    artifacts and canonicalize the order of records sharing a
    timestamp (the relative emission order of same-tick spans is a
    queue-processing artifact, not a simulated quantity)."""
    stripped = [
        {k: v for k, v in r.items() if k not in _DROP} for r in records
    ]
    return sorted(
        stripped,
        key=lambda d: (d.get("t", 0.0), sorted(
            (k, repr(v)) for k, v in d.items()
        )),
    )


def _run(machine, nodes, placement, elements, variant, options, fast_path,
         replay):
    program = (hybrid_allgather_program if variant == "hybrid"
               else pure_allgather_program)
    return run_program(
        machine(nodes), None, program,
        placement=placement,
        payload="cost-only",
        fast_path=fast_path,
        trace="p2p",
        replay=replay,
        program_kwargs={
            "nbytes_per_rank": elements * 8, "reps": REPS, **options,
        },
    )


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("fast_path", PATHS)
@pytest.mark.parametrize("cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_replay_bit_identical(cfg, machine, fast_path):
    _cfg_id, nodes, placement, elements, variant, options = cfg
    replaylib.clear_cache()
    off = _run(machine, nodes, placement, elements, variant, options,
               fast_path, replay=False)
    on = _run(machine, nodes, placement, elements, variant, options,
              fast_path, replay="loop")
    # The cache must actually engage — otherwise this test proves
    # nothing (warm-first runs the first occurrence of each shape live,
    # every later aligned repetition replays).
    assert on.replay_hits > 0
    # Exact per-rank virtual-time equality: mean latencies (returns),
    # rank finish times, job span.
    assert on.returns == off.returns
    assert on.finish_times == off.finish_times
    assert on.elapsed == off.elapsed
    # Byte/message counters, including per-transport splits.
    assert on.sent_messages == off.sent_messages
    assert on.sent_bytes == off.sent_bytes
    assert on.network_messages == off.network_messages
    assert on.network_bytes == off.network_bytes
    assert on.intra_bytes == off.intra_bytes
    assert on.comm_summary() == off.comm_summary()
    # Span streams: identical records at identical virtual timestamps;
    # replayed spans differ only by their `replayed` marker (and span
    # ids, an allocation-order artifact).
    assert _strip(on.trace) == _strip(off.trace)


def test_replayed_spans_are_marked():
    _cfg_id, nodes, placement, elements, variant, options = CONFIGS[0]
    replaylib.clear_cache()
    on = _run(hazel_hen, nodes, placement, elements, variant, options,
              True, replay="loop")
    marked = [r for r in on.trace if r.get("replayed")]
    assert on.replay_hits > 0
    assert marked, "replayed dispatches must re-emit marked spans"


def test_replay_skips_events():
    """The headline: a replayed repetition costs O(ranks) events."""
    _cfg_id, nodes, placement, elements, variant, options = CONFIGS[2]
    replaylib.clear_cache()
    off = _run(hazel_hen, nodes, placement, elements, variant, options,
               True, replay=False)
    on = _run(hazel_hen, nodes, placement, elements, variant, options,
              True, replay="loop")
    assert on.replay_hits == REPS
    # The replaying run must process far fewer events than the straight
    # run — the warm-first live rep and the align scaffolding remain,
    # but every hit collapses a dispatch to one wake per rank.
    assert on.events_processed < off.events_processed / 2
    assert on.replay_events_saved > 0
    # ``replay_events_saved`` is the record's event count minus the
    # O(ranks) wake events — the session's own parking scaffolding
    # (park events, decision hooks) is not part of a dispatch, so the
    # accounting tracks the observed off/on difference closely but not
    # to the event.
    saved = off.events_processed - on.events_processed
    assert abs(saved - on.replay_events_saved) <= 0.05 * saved


@pytest.mark.parametrize("variant", ["pure", "hybrid"])
def test_overlap_workload_replay_is_invisible(variant):
    """The overlap protocol interleaves non-blocking collectives with
    compute.  Every dispatch overlapped with an outstanding
    ``CollRequest`` is vetoed by the quiescence predicate; the
    align-disciplined blocking phases that *do* replay must be
    bit-identical."""
    from repro.bench.overlap import overlap_program

    kwargs = {"nbytes": 8 * 512, "variant": variant, "reps": 3}
    replaylib.clear_cache()
    off = run_program(
        hazel_hen(2), None, overlap_program,
        placement=Placement.block(2, 6),
        payload="cost-only",
        replay=False,
        program_kwargs=kwargs,
    )
    on = run_program(
        hazel_hen(2), None, overlap_program,
        placement=Placement.block(2, 6),
        payload="cost-only",
        replay="loop",
        program_kwargs=kwargs,
    )
    assert on.returns == off.returns
    assert on.elapsed == off.elapsed


def test_sweep_disables_replay_for_overlap(monkeypatch):
    """The sweep layer runs overlap points with the session off
    entirely — the quiescence predicate would veto every overlapped
    dispatch anyway, so the parking tax buys nothing."""
    import repro.mpi as mpilib
    from repro.bench import sweep as sweeplib

    seen = {}
    real = mpilib.run_program

    def spy(spec, nprocs, program, **kw):
        seen[kw["program_kwargs"].get("variant", "?")] = kw.get("replay")
        return real(spec, nprocs, program, **kw)

    monkeypatch.setattr(mpilib, "run_program", spy)
    base = dict(machine="hazel_hen", counts=(4,), nbytes=64,
                variant="hybrid")
    sweeplib._run_sim_point(
        sweeplib.SweepPoint(**base, workload="overlap")
    )
    sweeplib._run_sim_point(sweeplib.SweepPoint(**base))
    assert seen["hybrid"] is False          # overlap point
    assert seen["?"] == sweeplib.REPLAY_MODE  # latency point


def test_nonblocking_program_never_replays():
    """Explicit icoll in flight across blocking collectives: veto.

    The blocking allreduces use a symbolic (replay-eligible) payload,
    so the zero hits below can only come from the outstanding-icoll
    quiescence veto — not from a payload veto.  The iallgather moves
    16 MiB per rank in the background, so it genuinely stays in
    flight across the whole loop of tiny blocking allreduces."""
    from repro.mpi.datatypes import Bytes

    def prog(mpi):
        comm = mpi.world
        req = comm.iallgather(Bytes(16 << 20))
        for _ in range(3):
            yield from comm.align()
            yield from comm.allreduce(Bytes(64))
        yield from req.wait()

    replaylib.clear_cache()
    off = run_program(hazel_hen(1), 8, prog, payload="model",
                      replay=False)
    on = run_program(hazel_hen(1), 8, prog, payload="model",
                     replay="loop")
    assert on.replay_hits == 0
    assert on.elapsed == off.elapsed


def test_verify_mode_clean(monkeypatch):
    """REPRO_REPLAY_VERIFY=1 executes *and* replays every hit,
    asserting bit-identical outcomes — a clean pass on a replaying
    config is the strongest self-check the cache has."""
    monkeypatch.setenv("REPRO_REPLAY_VERIFY", "1")
    _cfg_id, nodes, placement, elements, variant, options = CONFIGS[2]
    replaylib.clear_cache()
    result = _run(hazel_hen, nodes, placement, elements, variant, options,
                  True, replay="loop")
    assert result.replay_hits == REPS  # hits verified, none demoted


def test_verify_mode_catches_corruption(monkeypatch):
    """Tampering with a cached record must trip the verifier."""
    monkeypatch.setenv("REPRO_REPLAY_VERIFY", "1")
    _cfg_id, nodes, placement, elements, variant, options = CONFIGS[0]
    replaylib.clear_cache()
    # Warm the cache without verification...
    monkeypatch.setenv("REPRO_REPLAY_VERIFY", "0")
    _run(hazel_hen, nodes, placement, elements, variant, options,
         True, replay="loop")
    # ...corrupt every record's first-rank latency...
    for rec in replaylib._CACHE.values():
        if rec is not None:
            rec.d_ticks = tuple(d + 1 for d in rec.d_ticks)
    # ...and re-run under verification.
    monkeypatch.setenv("REPRO_REPLAY_VERIFY", "1")
    with pytest.raises(replaylib.ReplayVerifyError):
        _run(hazel_hen, nodes, placement, elements, variant, options,
             True, replay="loop")
