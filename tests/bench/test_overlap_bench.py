"""The committed overlap benchmark stays exact, and the overlap sweep
workload is cache-key-sensitive.

``BENCH_overlap.json`` backs the overlap engine's acceptance claim:
overlap-aware SUMMA is at least 1.2x faster than its blocking
counterpart on a Fig-9-class configuration (hazel_hen, 4 nodes x 4
ranks, block 128).  The simulator is deterministic, so the test
regenerates every point and compares latencies exactly — any drift in
the non-blocking progress machinery, the collectives, or the SUMMA
overlap schedule shows up as a diff against the committed numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.overlap import main as overlap_main
from repro.bench.overlap import run_overlap_suite
from repro.bench.sweep import (
    SweepPoint,
    cache_key,
    expand_spec,
    point_name,
    run_point,
)

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_overlap.json"

_POINT_KEYS = ("pure_us", "compute_us", "overall_us", "effective_us",
               "overlap_pct")
_SUMMA_KEYS = ("blocking_us", "overlap_us", "speedup")


@pytest.fixture(scope="module")
def committed() -> dict:
    with BENCH_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def regenerated() -> dict:
    return run_overlap_suite(quick=False)


class TestCommittedBench:
    def test_acceptance_speedup(self, committed):
        """The headline claim: overlap-aware SUMMA >= 1.2x, both
        variants, on the committed Fig-9-class config."""
        assert committed["summa"]["ori/b128"]["speedup"] >= 1.2
        assert committed["summa"]["hybrid/b128"]["speedup"] >= 1.2

    def test_full_overlap_at_osu_grain(self, committed):
        """With the OSU grain (compute = blocking latency) the DES hides
        the whole exchange: every cf1 point reports ~100% overlap."""
        cf1 = {k: v for k, v in committed["points"].items()
               if k.endswith("/cf1")}
        assert cf1
        for point in cf1.values():
            assert point["overlap_pct"] == pytest.approx(100.0, abs=0.1)

    def test_points_regenerate_exactly(self, committed, regenerated):
        assert set(regenerated["points"]) == set(committed["points"])
        for name, point in regenerated["points"].items():
            for key in _POINT_KEYS:
                assert point[key] == pytest.approx(
                    committed["points"][name][key], rel=1e-12, abs=1e-9
                ), f"{name}/{key} drifted"

    def test_summa_regenerates_exactly(self, committed, regenerated):
        assert set(regenerated["summa"]) == set(committed["summa"])
        for name, stats in regenerated["summa"].items():
            for key in _SUMMA_KEYS:
                assert stats[key] == pytest.approx(
                    committed["summa"][name][key], rel=1e-12, abs=1e-9
                ), f"summa {name}/{key} drifted"


class TestOverlapCli:
    def test_quick_run_writes_json(self, tmp_path):
        out = tmp_path / "overlap.json"
        rc = overlap_main(["--quick", "--quiet", "--nodes", "2",
                           "--ppn", "2", "--out-json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "quick"
        assert doc["points"] and doc["summa"]

    def test_bad_args_rejected(self):
        assert overlap_main(["--nodes", "0"]) == 2


class TestOverlapSweepWorkload:
    def test_spec_expansion(self):
        pts = expand_spec({
            "machine": "testing", "nodes": 2, "ppn": 2,
            "elements": [512], "variant": ["hybrid", "pure"],
            "workload": "overlap", "compute_grain": [0.5, 1.0],
        })
        names = [point_name(p) for p in pts]
        assert names == [
            "n2x2/512el/hybrid/overlap0.5",
            "n2x2/512el/hybrid/overlap1",
            "n2x2/512el/pure/overlap0.5",
            "n2x2/512el/pure/overlap1",
        ]

    def test_cache_key_sensitive_to_compute_grain(self):
        base = dict(machine="testing", counts=(2, 2), nbytes=4096,
                    workload="overlap")
        keys = {cache_key(SweepPoint(compute_grain=g, **base))
                for g in (0.25, 0.5, 1.0)}
        assert len(keys) == 3
        # ... and to the workload itself.
        latency = SweepPoint(machine="testing", counts=(2, 2), nbytes=4096)
        assert cache_key(latency) not in keys

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            SweepPoint(machine="testing", counts=(2,), workload="bogus")
        with pytest.raises(ValueError):
            SweepPoint(machine="testing", counts=(2,), compute_grain=-1.0)

    def test_sim_point_reports_effective_latency(self):
        point = SweepPoint(machine="testing", counts=(4, 4), nbytes=4096,
                           workload="overlap", compute_grain=0.5)
        record = run_point(point)
        assert record["overlap_pct"] == pytest.approx(50.0, abs=0.5)
        assert record["latency_us"] == pytest.approx(
            record["pure_us"] * 0.5, rel=1e-6
        )

    def test_model_point_matches_sim_at_half_grain(self):
        """At grain 0.5 the exposed half is pure bandwidth for both
        engines, so sim and model agree to conformance tolerance."""
        base = dict(machine="testing", counts=(4, 4), nbytes=4096,
                    workload="overlap", compute_grain=0.5)
        sim = run_point(SweepPoint(engine="sim", **base))
        model = run_point(SweepPoint(engine="model",
                                     algo="shared_window", **base))
        assert model["latency_us"] == pytest.approx(
            sim["latency_us"], rel=0.35
        )
