"""JSON-over-HTTP sweep service (repro.bench.service).

Exercises the request logic directly (SweepService.handle) and once
through a real ThreadingHTTPServer on an ephemeral localhost port.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.service import SweepService, make_server
from repro.bench.sweep import ResultCache


@pytest.fixture()
def service(tmp_path):
    return SweepService(ResultCache(str(tmp_path / "cache")))


def test_health(service):
    status, doc = service.handle("GET", "/health", None)
    assert status == 200
    assert doc["status"] == "ok"
    assert doc["engine_version"]
    assert doc["model_version"]


def test_query_miss_then_hit(service):
    body = {"machine": "testing", "counts": [2, 2], "nbytes": 64}
    status, first = service.handle("POST", "/query", body)
    assert status == 200
    assert first["source"] == "computed"
    assert first["result"]["latency_us"] > 0

    status, second = service.handle("POST", "/query", body)
    assert status == 200
    assert second["source"] == "cache"
    assert second["result"] == first["result"]
    assert second["key"] == first["key"]


def test_query_rejects_bad_point(service):
    status, doc = service.handle("POST", "/query",
                                 {"machine": "no_such_machine"})
    assert status == 400
    assert "no_such_machine" in doc["error"]

    status, doc = service.handle("POST", "/query", {"bogus_field": 1})
    assert status == 400
    assert "bogus_field" in doc["error"]


def test_best_recommends_and_caches(service):
    body = {"machine": "hazel_hen", "nodes": 2, "ppn": 24,
            "elements": 1024}
    status, doc = service.handle("POST", "/best", body)
    assert status == 200
    rec = doc["recommendation"]
    assert rec["algo"]
    assert rec["variant"] in ("hybrid", "pure")
    # Ranked ascending by model latency; recommendation is the head.
    lats = [c["latency_us"] for c in doc["candidates"]]
    assert lats == sorted(lats)
    assert rec["latency_us"] == lats[0]
    variants = {c["variant"] for c in doc["candidates"]}
    assert variants == {"hybrid", "pure"}

    # Asking again answers every candidate from cache.
    _status, again = service.handle("POST", "/best", body)
    assert all(c["source"] == "cache" for c in again["candidates"])
    assert again["recommendation"] == rec


def test_best_irregular_uses_allgatherv(service):
    status, doc = service.handle("POST", "/best", {
        "machine": "hazel_hen", "counts": [24, 24, 16], "elements": 512,
    })
    assert status == 200
    assert {c["op"] for c in doc["candidates"]} == \
        {"allgatherv", "hy_allgather"}


def test_best_rejects_unknown_fields(service):
    status, doc = service.handle("POST", "/best", {"flavor": "spicy"})
    assert status == 400
    assert "flavor" in doc["error"]


def test_unknown_endpoint_404(service):
    status, doc = service.handle("GET", "/nope", None)
    assert status == 404
    assert "no such endpoint" in doc["error"]


def test_stats_counts_requests(service):
    service.handle("GET", "/health", None)
    service.handle("GET", "/nope", None)
    status, doc = service.handle("GET", "/stats", None)
    assert status == 200
    assert doc["requests"] == 3
    assert doc["errors"] == 1
    assert doc["cache"]["entries"] == 0


def test_http_round_trip(tmp_path):
    server = make_server(cache_dir=str(tmp_path / "cache"),
                         host="127.0.0.1", port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{port}"
    try:
        with urllib.request.urlopen(f"{base}/health", timeout=10) as resp:
            assert resp.status == 200
            assert json.load(resp)["status"] == "ok"

        body = json.dumps({"machine": "testing", "counts": [2, 2],
                           "nbytes": 64}).encode()
        req = urllib.request.Request(
            f"{base}/query", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            first = json.load(resp)
        assert first["source"] == "computed"
        with urllib.request.urlopen(
                urllib.request.Request(f"{base}/query", data=body),
                timeout=30) as resp:
            second = json.load(resp)
        assert second["source"] == "cache"
        assert second["result"] == first["result"]

        # Malformed JSON → 400, not a dead connection.
        bad = urllib.request.Request(f"{base}/query", data=b"{oops")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(bad, timeout=10)
        assert err.value.code == 400

        with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
            stats = json.load(resp)
        assert stats["cache"]["entries"] == 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
