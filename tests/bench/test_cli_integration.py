"""CLI integration: file outputs, report generation, figure selection."""

from __future__ import annotations

import pytest

from repro.bench.cli import main
from repro.bench.report import load_results


class TestCliFiles:
    def test_out_file_appends_tables(self, tmp_path, capsys):
        out = tmp_path / "results.txt"
        assert main(["--figure", "abl_placement", "--quiet",
                     "--out", str(out)]) == 0
        text = out.read_text()
        assert "SMP vs round-robin" in text
        # Appending a second run keeps the first block.
        assert main(["--figure", "abl_placement", "--quiet",
                     "--out", str(out)]) == 0
        assert out.read_text().count("SMP vs round-robin") == 2

    def test_report_file_has_verdicts(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(["--figure", "abl_placement", "--quiet",
                     "--report", str(report)]) == 0
        text = report.read_text()
        assert "REPRODUCED" in text
        assert "| elements |" in text or "| elements " in text

    def test_saved_output_reloads(self, tmp_path, capsys):
        out = tmp_path / "results.txt"
        main(["--figure", "abl_placement", "--quiet", "--out", str(out)])
        results = load_results(str(out))
        assert len(results) == 1
        assert results[0].figure_id == "abl_placement"
        assert results[0].rows

    def test_stdout_contains_table(self, capsys):
        main(["--figure", "abl_placement", "--quiet"])
        out = capsys.readouterr().out
        assert "packing_penalty" in out
        assert "wall time" in out
