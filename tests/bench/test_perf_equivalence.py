"""Fast-path / payload-mode equivalence on Fig 7/9/10-shaped configs.

The engine fast path and the cost-only payload mode are pure wall-clock
optimizations: virtual-time latencies, the number of processed events,
and the span stream must be *bit-identical* to the legacy scheduler
running full-data payloads.  These tests pin that contract on scaled-
down versions of the three benchmarked figure configurations.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.bench.osu import (
    hybrid_allgather_program,
    pure_allgather_program,
)
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen
from repro.mpi import run_program

# (id, nodes-spec, placement, elements, variant, program options) —
# miniatures of the repro-perf configs (docs/performance.md).
CONFIGS = [
    ("fig7-hybrid", 1, Placement.block(1, 8), 64, "hybrid", {}),
    ("fig7-pure", 1, Placement.block(1, 8), 64, "pure", {}),
    ("fig9-hybrid", 2, Placement.block(2, 6), 512, "hybrid", {}),
    ("fig9-pure", 2, Placement.block(2, 6), 512, "pure", {}),
    ("fig10-hybrid", 3, Placement.irregular([6, 6, 4]), 128, "hybrid", {}),
    ("fig10-pure", 3, Placement.irregular([6, 6, 4]), 128, "pure",
     {"irregular": True}),
]

# Every cheap combination that must reproduce the reference
# (fast_path=False + full data payloads) exactly.
COMBOS = [
    pytest.param(True, "full", id="fast-full"),
    pytest.param(False, "cost-only", id="legacy-costonly"),
    pytest.param(True, "cost-only", id="fast-costonly"),
]


def _run(nodes, placement, elements, variant, options, fast_path, payload):
    program = (hybrid_allgather_program if variant == "hybrid"
               else pure_allgather_program)
    result = run_program(
        hazel_hen(nodes), None, program,
        placement=placement,
        payload=payload,
        fast_path=fast_path,
        trace="p2p",
        program_kwargs={"nbytes_per_rank": elements * 8, **options},
    )
    span_hash = hashlib.sha256(
        json.dumps(result.trace, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return result, span_hash


@pytest.fixture(scope="module")
def reference():
    cache: dict[str, tuple] = {}

    def get(cfg):
        cfg_id, nodes, placement, elements, variant, options = cfg
        if cfg_id not in cache:
            cache[cfg_id] = _run(
                nodes, placement, elements, variant, options,
                fast_path=False, payload="full",
            )
        return cache[cfg_id]

    return get


@pytest.mark.parametrize("cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
@pytest.mark.parametrize("fast_path,payload", COMBOS)
def test_bit_identical_to_reference(cfg, fast_path, payload, reference):
    ref, ref_hash = reference(cfg)
    _cfg_id, nodes, placement, elements, variant, options = cfg
    result, span_hash = _run(
        nodes, placement, elements, variant, options, fast_path, payload
    )
    # Same number of processed events: the fast path may not add or
    # remove queue entries, only schedule them more cheaply.
    assert result.events_processed == ref.events_processed
    # Exact (not approximate) virtual-time equality on every rank.
    assert result.returns == ref.returns
    assert result.elapsed == ref.elapsed
    assert result.finish_times == ref.finish_times
    # The traffic accounting must agree too.
    assert result.sent_messages == ref.sent_messages
    assert result.sent_bytes == ref.sent_bytes
    assert result.network_bytes == ref.network_bytes
    # Span streams (p2p detail: dispatch + phase + queue-wait records)
    # are compared as a whole-stream hash: same records, same order,
    # same virtual timestamps.
    assert span_hash == ref_hash


def test_cost_only_skips_payload_storage():
    """cost-only mode must keep byte accounting while eliding data."""
    cfg_id, nodes, placement, elements, variant, options = CONFIGS[1]
    full, _ = _run(nodes, placement, elements, variant, options,
                   True, "full")
    cheap, _ = _run(nodes, placement, elements, variant, options,
                    True, "cost-only")
    assert cheap.sent_bytes == full.sent_bytes > 0
    # Full mode returns latencies as well -- both paths measured the
    # same virtual experiment.
    assert cheap.returns == full.returns
