"""The committed 2- vs 3-level transport crossover result stays exact.

``BENCH_transport_crossover.json`` is the committed benchmark backing
the socket-tier acceptance claim: on the honest 2-socket Hazel Hen
preset the three-level Hy_Allgather (per-socket bridges) beats the
two-level exchange at mid/large message sizes.  The simulator is
deterministic, so the test regenerates every point and compares the
latencies exactly — any drift in the socket tier, the transports, or
the collectives shows up as a diff against the committed numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.figures import get_figure

BENCH_PATH = Path(__file__).resolve().parents[2] / (
    "BENCH_transport_crossover.json"
)

#: Latency columns regenerated and compared exactly (microseconds).
_LATENCY_KEYS = (
    "flat_us",
    "shm_2l_us", "shm_3l_us",
    "cma_2l_us", "cma_3l_us",
    "pip_2l_us", "pip_3l_us",
)


@pytest.fixture(scope="module")
def committed() -> dict:
    with BENCH_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def regenerated() -> dict:
    fig = get_figure("ext_transport_crossover")
    points = {}
    for point in fig.sweep("quick"):
        out = fig.measure(point, "quick")
        points[f"{point['elements']}el"] = {
            "elements": point["elements"], **out,
        }
    return points


def test_committed_points_match_current_code(committed, regenerated):
    assert set(committed["points"]) == set(regenerated)
    for key, fresh in regenerated.items():
        pinned = committed["points"][key]
        for col in _LATENCY_KEYS:
            assert fresh[col] == pinned[col], (key, col)


def test_three_level_beats_two_level_somewhere(committed):
    """The acceptance point: shared_window_3l wins at >= 1 size on the
    2-socket preset (and on every registered transport)."""
    points = committed["points"].values()
    for prefix in ("shm", "cma", "pip"):
        assert any(
            p[f"{prefix}_3l_us"] < p[f"{prefix}_2l_us"] for p in points
        ), prefix


def test_three_level_pays_at_small_messages(committed):
    """The crossover is real, not a uniform win: the extra
    leader-completion round costs at the smallest size."""
    smallest = committed["points"]["1el"]
    assert smallest["shm_3l_us"] > smallest["shm_2l_us"]


def test_model_transports_command_sees_the_same_crossover():
    """The analytic companion (``repro-model transports``) agrees with
    the DES benchmark on the shape: 3-level loses at 8 B, wins by
    64 KiB, on every transport."""
    from repro.bench.model import run_transports

    doc = run_transports(sizes=(8, 65536))
    assert set(doc["transports"]) == {
        "shm_two_copy", "cma_single_copy", "pip_direct",
    }
    for transport, data in doc["transports"].items():
        small, large = data["rows"]
        assert small["three_level_s"] > small["two_level_s"], transport
        assert large["three_level_s"] < large["two_level_s"], transport
        assert data["crossover_nbytes"], transport


def test_two_level_matches_flat_model_closely(committed):
    """The two-level exchange barely touches the socket tier (leaders
    only); its 2-socket latency stays within 2% of the flat node model
    at every size — the socket tier does not tax the existing path."""
    for point in committed["points"].values():
        assert point["shm_2l_us"] == pytest.approx(
            point["flat_us"], rel=0.02
        )
