"""Tests for the benchmark harness (OSU protocol, figures, CLI)."""

from __future__ import annotations

import pytest

from repro.bench.figures import FIGURES, get_figure
from repro.bench.harness import Figure, FigureResult, format_table
from repro.bench.osu import osu_allgather_latency, osu_latency_program
from repro.machine import Placement, testing_machine as make_testing_spec
from repro.mpi import run_program


class TestOsuProtocol:
    def test_warmup_excluded_from_timing(self):
        # An op with a one-off setup cost: the first call is slow.
        def program(mpi):
            state = {"first": True}

            def op(_mpi):
                if state["first"]:
                    state["first"] = False
                    yield _mpi.compute(1.0)  # expensive one-off
                yield _mpi.compute(1e-6)

            latency = yield from osu_latency_program(
                mpi, op, reps=2, warmup=1
            )
            return latency

        result = run_program(
            make_testing_spec(1, 2), 2, program, payload_mode="model"
        )
        assert all(t < 1e-4 for t in result.returns)

    def test_latency_helper_variants(self):
        spec = make_testing_spec(2, 2)
        placement = Placement.block(2, 2)
        hy = osu_allgather_latency(spec, placement, 64, "hybrid")
        pure = osu_allgather_latency(spec, placement, 64, "pure")
        assert hy > 0 and pure > 0
        with pytest.raises(ValueError):
            osu_allgather_latency(spec, placement, 64, "quantum")


class TestHarness:
    def test_figure_run_collects_rows(self):
        fig = Figure(
            figure_id="toy",
            title="Toy",
            paper_claim="n/a",
            sweep=lambda mode: [{"x": 1}, {"x": 2}],
            measure=lambda p, m: {"y": p["x"] * 10},
            columns=["x", "y"],
        )
        result = fig.run(mode="quick")
        assert result.series("y") == [10, 20]
        assert result.figure_id == "toy"
        assert "Toy" in result.render()

    def test_mode_validated(self):
        fig = Figure("t", "T", "c", lambda m: [], lambda p, m: {})
        with pytest.raises(ValueError):
            fig.run(mode="huge")

    def test_format_table_aligns(self):
        text = format_table(
            ["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": None}]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert "-" in lines[3]  # None rendered as '-'


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "fig7", "fig8a", "fig8b", "fig9a", "fig9b", "fig10",
            "fig11a", "fig11b", "fig11c", "fig11d", "fig12",
        }
        assert expected <= set(FIGURES)

    def test_ablations_present(self):
        assert {
            "abl_sync", "abl_pipeline", "abl_placement", "abl_multileader"
        } <= set(FIGURES)

    def test_unknown_figure_lists_known(self):
        with pytest.raises(KeyError, match="fig7"):
            get_figure("fig99")

    def test_every_figure_declares_claim_and_sweeps(self):
        for fid, fig in FIGURES.items():
            assert fig.paper_claim, fid
            quick = fig.sweep("quick")
            paper = fig.sweep("paper")
            assert quick, fid
            assert len(paper) >= len(quick), fid


class TestCli:
    def test_list(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "abl_sync" in out

    def test_requires_action(self, capsys):
        from repro.bench.cli import main

        assert main([]) == 2

    def test_unknown_figure_exit_code(self, capsys):
        from repro.bench.cli import main

        assert main(["--figure", "nope"]) == 2
