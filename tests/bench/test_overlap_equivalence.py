"""Immediate collectives + Wait are bit-identical to blocking calls.

The contract behind the non-blocking API (satellite of the overlap
engine): posting ``I<op>`` and immediately waiting must produce exactly
the virtual times, message/byte counters, and span streams of the
blocking ``<op>`` — on Fig 7/9/10-class miniature configurations, in
both engine modes (``fast_path`` on and off), with ``payload=
"cost-only"``.

The one deliberate difference is ``events_processed``: each posted
collective spawns one background engine process per rank, which costs
exactly two extra engine events (spawn + terminate).  The tests pin that
constant so any drift in the progress machinery is caught.
"""

from __future__ import annotations

import pytest

from repro.core import HybridContext
from repro.machine import presets
from repro.machine.placement import Placement
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

NBYTES = 2048


def _fig7_blocking(mpi):
    """Regular two-level miniature: one of each blocking collective."""
    comm = mpi.world
    payload = Bytes(NBYTES)
    yield from comm.allgather(payload)
    yield from comm.bcast(payload, root=0)
    yield from comm.allreduce(payload)
    yield from comm.reduce(payload, root=0)
    yield from comm.barrier()
    return mpi.now


def _fig7_immediate(mpi):
    comm = mpi.world
    payload = Bytes(NBYTES)
    # Post, then wait immediately — one collective in flight at a time
    # (posting all five up front would pipeline them, which is legal
    # but not the blocking-equivalent schedule this test pins).
    for post in (
        lambda: comm.iallgather(payload),
        lambda: comm.ibcast(payload, root=0),
        lambda: comm.iallreduce(payload),
        lambda: comm.ireduce(payload, root=0),
        lambda: comm.ibarrier(),
    ):
        req = post()
        yield from req.wait()
    return mpi.now


def _fig10_blocking(mpi):
    """Irregular (allgatherv) miniature."""
    comm = mpi.world
    payload = Bytes(NBYTES + 8 * comm.rank)
    yield from comm.allgatherv(payload)
    return mpi.now


def _fig10_immediate(mpi):
    comm = mpi.world
    payload = Bytes(NBYTES + 8 * comm.rank)
    req = comm.iallgatherv(payload)
    yield from req.wait()
    return mpi.now


def _fig9_blocking(mpi):
    """Hybrid MPI+MPI miniature: the paper's Hy_* collectives."""
    ctx = yield from HybridContext.create(mpi.world)
    buf = yield from ctx.allgather_buffer(NBYTES)
    bbuf = yield from ctx.bcast_buffer(NBYTES)
    yield from ctx.allgather(buf)
    yield from ctx.bcast(bbuf, root=0)
    yield from ctx.allreduce(Bytes(NBYTES), NBYTES)
    return mpi.now


def _fig9_immediate(mpi):
    ctx = yield from HybridContext.create(mpi.world)
    buf = yield from ctx.allgather_buffer(NBYTES)
    bbuf = yield from ctx.bcast_buffer(NBYTES)
    for post in (
        lambda: ctx.iallgather(buf),
        lambda: ctx.ibcast(bbuf, root=0),
        lambda: ctx.iallreduce(Bytes(NBYTES), NBYTES),
    ):
        req = post()
        yield from req.wait()
    return mpi.now


#: (name, blocking program, immediate program, counts, collective count).
CASES = [
    ("fig7", _fig7_blocking, _fig7_immediate, (4, 4), 5),
    ("fig9", _fig9_blocking, _fig9_immediate, (3, 3, 3), 3),
    ("fig10", _fig10_blocking, _fig10_immediate, (4, 2), 1),
]


def _run(program, counts, fast_path):
    spec = presets.hazel_hen(num_nodes=len(counts))
    return run_program(
        spec, None, program,
        placement=Placement.irregular(list(counts)),
        payload="cost-only", fast_path=fast_path,
        trace="dispatch",
    )


@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast", "heap"])
@pytest.mark.parametrize("name,blocking,immediate,counts,ncolls",
                         CASES, ids=[c[0] for c in CASES])
class TestImmediateWaitEquivalence:
    def test_bit_identical(self, name, blocking, immediate, counts,
                           ncolls, fast_path):
        base = _run(blocking, counts, fast_path)
        imm = _run(immediate, counts, fast_path)

        assert imm.returns == base.returns
        assert imm.elapsed == base.elapsed
        assert imm.finish_times == base.finish_times
        assert imm.sent_messages == base.sent_messages
        assert imm.sent_bytes == base.sent_bytes
        assert imm.intra_copies == base.intra_copies
        assert imm.intra_bytes == base.intra_bytes
        assert imm.network_messages == base.network_messages
        assert imm.network_bytes == base.network_bytes
        # Span streams: identical records in identical order.
        assert imm.trace == base.trace
        # The only engine-level difference: 2 events (spawn+terminate)
        # per posted collective per rank.
        nranks = sum(counts)
        assert (imm.events_processed - base.events_processed
                == 2 * ncolls * nranks)
