"""Property-based tests over randomized collective configurations,
plus an exhaustive sweep of every registered collective algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import Placement
from repro.mpi.collectives import registry
from repro.mpi.collectives.registry import CollRequest, ForcedSelection
from repro.mpi.collectives.tuning import generic_tuning
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of, run

_CHEAP = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Random irregular placements of 2..10 ranks over 1..4 nodes.
irregular_placements = st.lists(
    st.integers(1, 4), min_size=1, max_size=4
).map(Placement.irregular)


@given(placement=irregular_placements, root=st.integers(0, 100))
@_CHEAP
def test_bcast_any_root_any_placement(placement, root):
    size = placement.num_ranks
    root %= size

    def prog(mpi):
        comm = mpi.world
        buf = (
            np.arange(5.0) + root if comm.rank == root else np.empty(5)
        )
        out = yield from comm.bcast(buf, root=root)
        return list(np.asarray(out).reshape(-1))

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    expected = [float(root + i) for i in range(5)]
    assert all(r == expected for r in rets)


@given(placement=irregular_placements,
       op=st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]))
@_CHEAP
def test_allreduce_matches_numpy_any_placement(placement, op):
    size = placement.num_ranks

    def prog(mpi):
        comm = mpi.world
        vec = np.array([float(comm.rank), float(comm.rank % 3)])
        out = yield from comm.allreduce(vec, op)
        return list(np.asarray(out))

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    ref_fn = {
        ReduceOp.SUM: np.sum, ReduceOp.MIN: np.min, ReduceOp.MAX: np.max,
    }[op]
    contributions = np.array(
        [[float(r), float(r % 3)] for r in range(size)]
    )
    expected = list(ref_fn(contributions, axis=0))
    assert all(r == expected for r in rets)


@given(placement=irregular_placements, extra=st.integers(0, 6))
@_CHEAP
def test_allgatherv_irregular_sizes_any_placement(placement, extra):
    def prog(mpi):
        comm = mpi.world
        count = 1 + (comm.rank + extra) % 4
        mine = np.full(count, float(comm.rank))
        blocks = yield from comm.allgatherv(mine)
        return [
            (np.asarray(b).size, float(np.asarray(b).reshape(-1)[0]))
            for b in blocks
        ]

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    expected = [
        (1 + (r + extra) % 4, float(r))
        for r in range(placement.num_ranks)
    ]
    assert all(r == expected for r in rets)


@given(placement=irregular_placements)
@_CHEAP
def test_hybrid_bcast_equals_pure_any_placement(placement):
    from repro.core import HybridContext

    def pure(mpi):
        comm = mpi.world
        buf = np.arange(4.0) if comm.rank == 0 else np.empty(4)
        out = yield from comm.bcast(buf, root=0)
        return list(np.asarray(out).reshape(-1))

    def hybrid(mpi):
        comm = mpi.world
        ctx = yield from HybridContext.create(comm)
        buf = yield from ctx.bcast_buffer(32)
        if comm.rank == 0:
            buf.node_view(np.float64)[:] = np.arange(4.0)
        yield from ctx.bcast(buf, root=0)
        return list(buf.node_view(np.float64))

    a = returns_of(pure, nodes=placement.num_nodes, cores=4,
                   placement=placement)
    b = returns_of(hybrid, nodes=placement.num_nodes, cores=4,
                   placement=placement)
    assert a == b


@given(
    nranks=st.integers(2, 8),
    blocks_scale=st.integers(1, 5),
)
@_CHEAP
def test_reduce_scatter_conserves_total(nranks, blocks_scale):
    """Sum of the scattered reductions equals the reduction of sums."""

    def prog(mpi):
        comm = mpi.world
        vec = (np.arange(float(comm.size * blocks_scale))
               * (comm.rank + 1))
        mine = yield from comm.reduce_scatter(vec, ReduceOp.SUM)
        return float(np.asarray(mine).sum())

    rets = returns_of(prog, nodes=1, cores=nranks, nprocs=nranks)
    total_of_parts = sum(rets)
    full = sum(
        (np.arange(float(nranks * blocks_scale)) * (r + 1)).sum()
        for r in range(nranks)
    )
    assert total_of_parts == float(full)


# ---------------------------------------------------------------------------
# Exhaustive registry sweep: every registered algorithm of every mpi-layer
# op must produce bit-identical data to the flat reference implementation,
# over pof2 / non-pof2 sizes and single-/multi-node placements.

_PLACEMENTS = {
    "1x4_pof2": Placement.irregular([4]),
    "1x3_nonpof2": Placement.irregular([3]),
    "2x2_hier": Placement.irregular([2, 2]),
    "3+2_hier_nonpof2": Placement.irregular([3, 2]),
}

_ALGO_CASES = [
    (op, algo.name)
    for op in sorted(registry.ops())
    if not op.startswith("hy_")  # hybrid ops run via repro.core, not dispatch
    for algo in registry.algorithms_for(op)
]


def _prog_allgather(mpi):
    comm = mpi.world
    out = yield from comm.allgather(np.arange(3.0) + 10 * comm.rank)
    return [list(np.asarray(b)) for b in out]


def _prog_allgatherv(mpi):
    comm = mpi.world
    mine = np.full(1 + comm.rank % 3, float(comm.rank))
    out = yield from comm.allgatherv(mine)
    return [list(np.asarray(b)) for b in out]


def _prog_bcast(mpi):
    comm = mpi.world
    buf = np.arange(4.0) + 7 if comm.rank == 0 else np.empty(4)
    out = yield from comm.bcast(buf, root=0)
    return list(np.asarray(out))


def _prog_gather(mpi):
    comm = mpi.world
    out = yield from comm.gather(np.array([float(comm.rank), 2.0]), root=0)
    if out is None:
        return None
    return [list(np.asarray(b)) for b in out]


def _prog_gatherv(mpi):
    comm = mpi.world
    mine = np.full(1 + comm.rank % 2, float(comm.rank))
    out = yield from comm.gatherv(mine, root=0)
    if out is None:
        return None
    return [list(np.asarray(b)) for b in out]


def _prog_scatter(mpi):
    comm = mpi.world
    parts = (
        [np.full(2, float(r * r)) for r in range(comm.size)]
        if comm.rank == 0 else None
    )
    out = yield from comm.scatter(parts, root=0)
    return list(np.asarray(out))


def _prog_reduce(mpi):
    comm = mpi.world
    out = yield from comm.reduce(
        np.arange(3.0) * (comm.rank + 1), ReduceOp.SUM, root=0
    )
    return None if out is None else list(np.asarray(out))


def _prog_allreduce(mpi):
    comm = mpi.world
    out = yield from comm.allreduce(
        np.arange(3.0) * (comm.rank + 1), ReduceOp.SUM
    )
    return list(np.asarray(out))


def _prog_alltoall(mpi):
    comm = mpi.world
    sends = [
        np.array([float(comm.rank * comm.size + peer)])
        for peer in range(comm.size)
    ]
    out = yield from comm.alltoall(sends)
    return [list(np.asarray(b)) for b in out]


def _prog_scan(mpi):
    comm = mpi.world
    out = yield from comm.scan(np.arange(2.0) + comm.rank, ReduceOp.SUM)
    return list(np.asarray(out))


def _prog_exscan(mpi):
    comm = mpi.world
    out = yield from comm.exscan(np.arange(2.0) + comm.rank, ReduceOp.SUM)
    return None if out is None else list(np.asarray(out))


def _prog_reduce_scatter(mpi):
    comm = mpi.world
    vec = np.arange(float(comm.size * 2)) * (comm.rank + 1)
    out = yield from comm.reduce_scatter(vec, ReduceOp.SUM)
    return list(np.asarray(out))


def _prog_barrier(mpi):
    yield from mpi.world.barrier()
    return mpi.world.rank


_PROGRAMS = {
    "allgather": _prog_allgather,
    "allgatherv": _prog_allgatherv,
    "allreduce": _prog_allreduce,
    "alltoall": _prog_alltoall,
    "barrier": _prog_barrier,
    "bcast": _prog_bcast,
    "exscan": _prog_exscan,
    "gather": _prog_gather,
    "gatherv": _prog_gatherv,
    "reduce": _prog_reduce,
    "reduce_scatter": _prog_reduce_scatter,
    "scan": _prog_scan,
    "scatter": _prog_scatter,
}

_probe_comms: dict[str, object] = {}
_flat_refs: dict[tuple[str, str], object] = {}


def _comm_of(pkey):
    """A (finished) communicator for applicability checks."""
    if pkey not in _probe_comms:
        placement = _PLACEMENTS[pkey]
        box = []

        def probe(mpi):
            box.append(mpi.world)
            yield from mpi.world.barrier()

        run(probe, nodes=placement.num_nodes, cores=4, placement=placement)
        _probe_comms[pkey] = box[0]
    return _probe_comms[pkey]


def _flat_reference(pkey, op):
    """Per-rank results of the flat (smp_aware=False) implementation."""
    if (pkey, op) not in _flat_refs:
        placement = _PLACEMENTS[pkey]
        _flat_refs[(pkey, op)] = returns_of(
            _PROGRAMS[op], nodes=placement.num_nodes, cores=4,
            placement=placement,
            tuning=generic_tuning().with_(smp_aware=False),
        )
    return _flat_refs[(pkey, op)]


@pytest.mark.parametrize("pkey", sorted(_PLACEMENTS))
@pytest.mark.parametrize(("op", "algo_name"), _ALGO_CASES)
def test_every_algorithm_matches_flat_reference(pkey, op, algo_name):
    placement = _PLACEMENTS[pkey]
    algo = registry.get_algorithm(op, algo_name)
    probe = _comm_of(pkey)
    req = CollRequest(op=op, nbytes=0, total=0, root=0)
    if not algo.applicable(probe, req):
        pytest.skip(f"{op}/{algo_name} not applicable on {pkey}")
    result = run(
        _PROGRAMS[op], nodes=placement.num_nodes, cores=4,
        placement=placement, trace=True,
        policy=ForcedSelection({op: algo_name}),
    )
    assert result.returns == _flat_reference(pkey, op)
    dispatched = {(r["op"], r["algo"]) for r in result.trace}
    assert (op, algo_name) in dispatched


@given(seed=st.integers(0, 10_000))
@_CHEAP
def test_engine_time_never_decreases_through_collectives(seed):
    rng = np.random.default_rng(seed)
    delays = rng.random(4) * 1e-4

    def prog(mpi):
        comm = mpi.world
        stamps = [mpi.now]
        yield mpi.compute(float(delays[comm.rank]))
        stamps.append(mpi.now)
        yield from comm.barrier()
        stamps.append(mpi.now)
        yield from comm.allgather(np.array([1.0]))
        stamps.append(mpi.now)
        return stamps

    rets = returns_of(prog, nodes=2, cores=2)
    for stamps in rets:
        assert stamps == sorted(stamps)
