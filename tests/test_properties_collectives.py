"""Property-based tests over randomized collective configurations."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import Placement
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of

_CHEAP = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Random irregular placements of 2..10 ranks over 1..4 nodes.
irregular_placements = st.lists(
    st.integers(1, 4), min_size=1, max_size=4
).map(Placement.irregular)


@given(placement=irregular_placements, root=st.integers(0, 100))
@_CHEAP
def test_bcast_any_root_any_placement(placement, root):
    size = placement.num_ranks
    root %= size

    def prog(mpi):
        comm = mpi.world
        buf = (
            np.arange(5.0) + root if comm.rank == root else np.empty(5)
        )
        out = yield from comm.bcast(buf, root=root)
        return list(np.asarray(out).reshape(-1))

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    expected = [float(root + i) for i in range(5)]
    assert all(r == expected for r in rets)


@given(placement=irregular_placements,
       op=st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]))
@_CHEAP
def test_allreduce_matches_numpy_any_placement(placement, op):
    size = placement.num_ranks

    def prog(mpi):
        comm = mpi.world
        vec = np.array([float(comm.rank), float(comm.rank % 3)])
        out = yield from comm.allreduce(vec, op)
        return list(np.asarray(out))

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    ref_fn = {
        ReduceOp.SUM: np.sum, ReduceOp.MIN: np.min, ReduceOp.MAX: np.max,
    }[op]
    contributions = np.array(
        [[float(r), float(r % 3)] for r in range(size)]
    )
    expected = list(ref_fn(contributions, axis=0))
    assert all(r == expected for r in rets)


@given(placement=irregular_placements, extra=st.integers(0, 6))
@_CHEAP
def test_allgatherv_irregular_sizes_any_placement(placement, extra):
    def prog(mpi):
        comm = mpi.world
        count = 1 + (comm.rank + extra) % 4
        mine = np.full(count, float(comm.rank))
        blocks = yield from comm.allgatherv(mine)
        return [
            (np.asarray(b).size, float(np.asarray(b).reshape(-1)[0]))
            for b in blocks
        ]

    rets = returns_of(prog, nodes=placement.num_nodes, cores=4,
                      placement=placement)
    expected = [
        (1 + (r + extra) % 4, float(r))
        for r in range(placement.num_ranks)
    ]
    assert all(r == expected for r in rets)


@given(placement=irregular_placements)
@_CHEAP
def test_hybrid_bcast_equals_pure_any_placement(placement):
    from repro.core import HybridContext

    def pure(mpi):
        comm = mpi.world
        buf = np.arange(4.0) if comm.rank == 0 else np.empty(4)
        out = yield from comm.bcast(buf, root=0)
        return list(np.asarray(out).reshape(-1))

    def hybrid(mpi):
        comm = mpi.world
        ctx = yield from HybridContext.create(comm)
        buf = yield from ctx.bcast_buffer(32)
        if comm.rank == 0:
            buf.node_view(np.float64)[:] = np.arange(4.0)
        yield from ctx.bcast(buf, root=0)
        return list(buf.node_view(np.float64))

    a = returns_of(pure, nodes=placement.num_nodes, cores=4,
                   placement=placement)
    b = returns_of(hybrid, nodes=placement.num_nodes, cores=4,
                   placement=placement)
    assert a == b


@given(
    nranks=st.integers(2, 8),
    blocks_scale=st.integers(1, 5),
)
@_CHEAP
def test_reduce_scatter_conserves_total(nranks, blocks_scale):
    """Sum of the scattered reductions equals the reduction of sums."""

    def prog(mpi):
        comm = mpi.world
        vec = (np.arange(float(comm.size * blocks_scale))
               * (comm.rank + 1))
        mine = yield from comm.reduce_scatter(vec, ReduceOp.SUM)
        return float(np.asarray(mine).sum())

    rets = returns_of(prog, nodes=1, cores=nranks, nprocs=nranks)
    total_of_parts = sum(rets)
    full = sum(
        (np.arange(float(nranks * blocks_scale)) * (r + 1)).sum()
        for r in range(nranks)
    )
    assert total_of_parts == float(full)


@given(seed=st.integers(0, 10_000))
@_CHEAP
def test_engine_time_never_decreases_through_collectives(seed):
    rng = np.random.default_rng(seed)
    delays = rng.random(4) * 1e-4

    def prog(mpi):
        comm = mpi.world
        stamps = [mpi.now]
        yield mpi.compute(float(delays[comm.rank]))
        stamps.append(mpi.now)
        yield from comm.barrier()
        stamps.append(mpi.now)
        yield from comm.allgather(np.array([1.0]))
        stamps.append(mpi.now)
        return stamps

    rets = returns_of(prog, nodes=2, cores=2)
    for stamps in rets:
        assert stamps == sorted(stamps)
