"""Tests for the power-iteration workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matvec import (
    MatvecConfig,
    _planted_matrix,
    power_iteration_program,
)
from tests.helpers import run


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatvecConfig(variant="x")
        with pytest.raises(ValueError):
            MatvecConfig(n=0)


class TestPlantedMatrix:
    def test_symmetric_with_dominant_eigenvalue(self):
        a = _planted_matrix(64, seed=1)
        np.testing.assert_allclose(a, a.T)
        eigs = np.linalg.eigvalsh(a)
        assert eigs[-1] > 4.0
        assert eigs[-1] > 2.0 * abs(eigs[-2])


@pytest.mark.parametrize("variant", ["ori", "hybrid"])
class TestConvergence:
    def test_finds_dominant_eigenvalue(self, variant):
        cfg = MatvecConfig(n=96, iterations=30, variant=variant)
        res = run(power_iteration_program, nodes=2, cores=2, nprocs=4,
                  program_kwargs={"config": cfg})
        a = _planted_matrix(96, cfg.seed)
        true_lam = np.linalg.eigvalsh(a)[-1]
        for r in res.returns:
            assert r["eigenvalue"] == pytest.approx(true_lam, rel=0.01)
            assert r["residual"] < 0.2

    def test_uneven_partition(self, variant):
        # n not divisible by nprocs exercises the irregular buffers.
        cfg = MatvecConfig(n=50, iterations=25, variant=variant)
        res = run(power_iteration_program, nodes=2, cores=3, nprocs=6,
                  program_kwargs={"config": cfg})
        lams = {round(r["eigenvalue"], 6) for r in res.returns}
        assert len(lams) == 1  # every rank agrees


class TestVariantsAgree:
    def test_same_eigenvalue_both_variants(self):
        lams = {}
        for variant in ("ori", "hybrid"):
            cfg = MatvecConfig(n=64, iterations=25, variant=variant)
            res = run(power_iteration_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            lams[variant] = res.returns[0]["eigenvalue"]
        assert lams["ori"] == pytest.approx(lams["hybrid"], rel=1e-6)

    def test_hybrid_comm_cheaper_on_node(self):
        def comm_time(variant):
            cfg = MatvecConfig(n=512, iterations=5, variant=variant)
            res = run(power_iteration_program, nodes=1, cores=8, nprocs=8,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["comm"] for r in res.returns)

        assert comm_time("hybrid") < comm_time("ori")
