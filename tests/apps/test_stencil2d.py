"""Tests for the 2D Cartesian stencil."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil2d import Stencil2DConfig, _sweep, stencil2d_program
from repro.mpi.cart import dims_create
from tests.helpers import run


def reference_grid(nprocs: int, tile: int, iterations: int) -> np.ndarray:
    """Serial reference: assemble the global grid and sweep it."""
    dims = dims_create(nprocs, 2)
    rows, cols = dims
    grid = np.zeros((rows * tile, cols * tile))
    for rank in range(nprocs):
        r, c = rank // cols, rank % cols
        grid[r * tile : (r + 1) * tile, c * tile : (c + 1) * tile] = np.sin(
            np.arange(tile * tile, dtype=np.float64) * 0.37 + rank
        ).reshape(tile, tile)
    for _ in range(iterations):
        padded = np.zeros((grid.shape[0] + 2, grid.shape[1] + 2))
        padded[1:-1, 1:-1] = grid
        grid = 0.25 * (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        )
    return grid


class TestSweepKernel:
    def test_interior_only(self):
        tile = np.ones((2, 2))
        out = _sweep(tile, None, None, None, None)
        assert out[0, 0] == pytest.approx(0.5)

    def test_full_halos(self):
        tile = np.zeros((2, 2))
        ones = np.ones(2)
        out = _sweep(tile, ones, ones, ones, ones)
        # Corner points see one vertical + one horizontal halo neighbour.
        assert out[0, 0] == pytest.approx(0.5)


@pytest.mark.parametrize("variant", ["pure", "hybrid"])
@pytest.mark.parametrize("nprocs,nodes,cores", [(4, 2, 2), (6, 2, 3), (8, 2, 4)])
class TestAgainstReference:
    def test_matches_serial(self, variant, nprocs, nodes, cores):
        tile, iters = 6, 3
        cfg = Stencil2DConfig(tile=tile, iterations=iters, variant=variant)
        res = run(stencil2d_program, nodes=nodes, cores=cores,
                  nprocs=nprocs, program_kwargs={"config": cfg})
        expected = float(reference_grid(nprocs, tile, iters).sum())
        total = sum(r["checksum"] for r in res.returns)
        assert total == pytest.approx(expected, abs=1e-9)


class TestVariantBehaviour:
    def test_checksums_match_between_variants(self):
        sums = {}
        for variant in ("pure", "hybrid"):
            cfg = Stencil2DConfig(tile=5, iterations=4, variant=variant)
            res = run(stencil2d_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            sums[variant] = sum(r["checksum"] for r in res.returns)
        assert sums["pure"] == pytest.approx(sums["hybrid"], abs=1e-12)

    def test_hybrid_sends_fewer_network_messages_on_one_node(self):
        cfg_p = Stencil2DConfig(tile=8, iterations=2, variant="pure")
        cfg_h = Stencil2DConfig(tile=8, iterations=2, variant="hybrid")
        pure = run(stencil2d_program, nodes=1, cores=4, nprocs=4,
                   program_kwargs={"config": cfg_p})
        hy = run(stencil2d_program, nodes=1, cores=4, nprocs=4,
                 program_kwargs={"config": cfg_h})
        # Single node: hybrid halos are all loads -> zero p2p messages
        # beyond barriers; pure exchanges 4 halo pairs per iteration.
        assert hy.intra_copies < pure.intra_copies

    def test_grid_dims_reported(self):
        cfg = Stencil2DConfig(tile=4, iterations=1)
        res = run(stencil2d_program, nodes=1, cores=6, nprocs=6,
                  program_kwargs={"config": cfg})
        assert all(r["dims"] == (3, 2) for r in res.returns)


class TestOverlap:
    @pytest.mark.parametrize("variant", ["pure", "hybrid"])
    def test_overlap_checksum_matches_blocking(self, variant):
        checksums = {}
        for overlap in (False, True):
            cfg = Stencil2DConfig(tile=8, iterations=3, variant=variant,
                                  overlap=overlap)
            res = run(stencil2d_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            checksums[overlap] = [r["checksum"] for r in res.returns]
        assert checksums[False] == checksums[True]

    @pytest.mark.parametrize("variant", ["pure", "hybrid"])
    def test_overlap_no_slower_in_model_mode(self, variant):
        def total(overlap):
            cfg = Stencil2DConfig(tile=64, iterations=3, variant=variant,
                                  overlap=overlap)
            res = run(stencil2d_program, nodes=2, cores=4, nprocs=8,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["total"] for r in res.returns)

        assert total(True) <= total(False)
