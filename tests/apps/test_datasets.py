"""Tests for the synthetic chembl-like dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.datasets import synthetic_chembl


class TestGenerator:
    def test_default_dimensions_match_chembl20(self):
        ds = synthetic_chembl()
        assert ds.num_compounds == 15073
        assert ds.num_targets == 346
        assert 0.009 < ds.density < 0.013

    def test_deterministic_for_seed(self):
        a = synthetic_chembl(n_compounds=100, n_targets=20, seed=3)
        b = synthetic_chembl(n_compounds=100, n_targets=20, seed=3)
        assert (a.matrix != b.matrix).nnz == 0

    def test_different_seeds_differ(self):
        a = synthetic_chembl(n_compounds=100, n_targets=20, seed=3)
        b = synthetic_chembl(n_compounds=100, n_targets=20, seed=4)
        assert (a.matrix != b.matrix).nnz > 0

    def test_values_look_like_pic50(self):
        ds = synthetic_chembl(n_compounds=500, n_targets=50, density=0.2)
        vals = ds.matrix.tocoo().data
        assert 4.0 < vals.mean() < 9.0
        assert vals.std() < 5.0

    def test_low_rank_signal_present(self):
        # Same seed, different noise levels: the shared low-rank signal
        # must dominate, so the two value streams correlate strongly.
        clean = synthetic_chembl(
            n_compounds=200, n_targets=60, density=0.5, latent_dim=4,
            noise=0.0, seed=9,
        ).matrix.tocoo()
        noisy = synthetic_chembl(
            n_compounds=200, n_targets=60, density=0.5, latent_dim=4,
            noise=1.0, seed=9,
        ).matrix.tocoo()
        corr = np.corrcoef(clean.data, noisy.data)[0, 1]
        assert corr > 0.6, corr

    def test_density_validation(self):
        with pytest.raises(ValueError):
            synthetic_chembl(density=0.0)
        with pytest.raises(ValueError):
            synthetic_chembl(density=1.5)


class TestSplit:
    def test_train_test_partition(self):
        ds = synthetic_chembl(n_compounds=300, n_targets=40, density=0.3)
        train, test = ds.train_test_split(test_fraction=0.25)
        assert train.shape == test.shape == ds.matrix.shape
        # Roughly a 75/25 split of the observations.
        frac = test.nnz / (train.nnz + test.nnz)
        assert 0.2 < frac < 0.3
        # Disjoint supports.
        overlap = train.multiply(test)
        assert overlap.nnz == 0

    def test_fraction_validated(self):
        ds = synthetic_chembl(n_compounds=50, n_targets=10, density=0.3)
        with pytest.raises(ValueError):
            ds.train_test_split(0.0)
