"""Tests for the SUMMA kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.summa import (
    SummaConfig,
    grid_shape,
    summa_program,
    verify_summa,
)
from tests.helpers import run


class TestConfig:
    def test_grid_shape(self):
        assert grid_shape(16) == 4
        assert grid_shape(1) == 1
        with pytest.raises(ValueError):
            grid_shape(6)

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            SummaConfig(variant="magic")
        with pytest.raises(ValueError):
            SummaConfig(block=0)


@pytest.mark.parametrize("variant", ["ori", "hybrid"])
@pytest.mark.parametrize("grid,block", [(2, 4), (2, 8), (3, 5), (4, 4)])
class TestCorrectness:
    def test_product_matches_numpy(self, variant, grid, block):
        nprocs = grid * grid
        cfg = SummaConfig(block=block, variant=variant, verify=True)
        result = run(
            summa_program, nodes=2, cores=(nprocs + 1) // 2,
            nprocs=nprocs, program_kwargs={"config": cfg},
        )
        assert verify_summa(result.returns, grid, block)


class TestVariantsAgree:
    def test_same_result_both_variants(self):
        results = {}
        for variant in ("ori", "hybrid"):
            cfg = SummaConfig(block=6, variant=variant, verify=True)
            res = run(summa_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            results[variant] = np.concatenate(
                [r["c"].reshape(-1) for r in res.returns]
            )
        np.testing.assert_allclose(
            results["ori"], results["hybrid"], atol=1e-10
        )

    def test_stats_reported(self):
        cfg = SummaConfig(block=4, variant="hybrid")
        res = run(summa_program, nodes=1, cores=4, nprocs=4,
                  program_kwargs={"config": cfg})
        for r in res.returns:
            assert r["total"] >= r["comm"] >= 0
            assert r["compute"] >= 0
            assert "norm" in r


class TestModelMode:
    def test_model_mode_runs_without_data(self):
        for variant in ("ori", "hybrid"):
            cfg = SummaConfig(block=16, variant=variant)
            res = run(summa_program, nodes=2, cores=2, nprocs=4,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            assert all(r["norm"] is None for r in res.returns)
            assert all(r["total"] > 0 for r in res.returns)

    def test_hybrid_wins_on_shared_node_model(self):
        def total(variant):
            cfg = SummaConfig(block=16, variant=variant)
            res = run(summa_program, nodes=1, cores=16, nprocs=16,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["total"] for r in res.returns)

        assert total("hybrid") < total("ori")


class TestOverlap:
    @pytest.mark.parametrize("variant", ["ori", "hybrid"])
    def test_overlap_product_matches_numpy(self, variant):
        cfg = SummaConfig(block=5, variant=variant, verify=True,
                          overlap=True)
        res = run(summa_program, nodes=2, cores=2, nprocs=4,
                  program_kwargs={"config": cfg})
        assert verify_summa(res.returns, 2, 5)

    @pytest.mark.parametrize("variant", ["ori", "hybrid"])
    def test_overlap_matches_blocking_result(self, variant):
        results = {}
        for overlap in (False, True):
            cfg = SummaConfig(block=6, variant=variant, verify=True,
                              overlap=overlap)
            res = run(summa_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            results[overlap] = np.concatenate(
                [r["c"].reshape(-1) for r in res.returns]
            )
        np.testing.assert_allclose(results[False], results[True],
                                   atol=1e-10)

    @pytest.mark.parametrize("variant", ["ori", "hybrid"])
    def test_overlap_is_faster_in_model_mode(self, variant):
        def total(overlap):
            cfg = SummaConfig(block=64, variant=variant, overlap=overlap)
            res = run(summa_program, nodes=4, cores=4, nprocs=16,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["total"] for r in res.returns)

        assert total(True) < total(False)

    def test_overlap_reports_exposed_comm_only(self):
        cfg = SummaConfig(block=64, variant="ori", overlap=True)
        res = run(summa_program, nodes=4, cores=4, nprocs=16,
                  payload_mode="model", program_kwargs={"config": cfg})
        for r in res.returns:
            assert r["total"] >= r["comm"] >= 0
            assert r["compute"] >= 0
