"""Tests for the BPMF application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.bpmf import BPMFConfig, block_partition, bpmf_program
from repro.apps.datasets import synthetic_chembl
from tests.helpers import run


@pytest.fixture(scope="module")
def small_dataset():
    return synthetic_chembl(
        n_compounds=150, n_targets=40, density=0.12, latent_dim=6, seed=5
    )


class TestPartition:
    def test_block_partition_covers_range(self):
        parts = block_partition(10, 3)
        assert parts == [(0, 4), (4, 7), (7, 10)]
        assert parts[0][1] - parts[0][0] >= parts[-1][1] - parts[-1][0]

    def test_more_parts_than_items(self):
        parts = block_partition(2, 4)
        assert parts == [(0, 1), (1, 2), (2, 2), (2, 2)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BPMFConfig(variant="x")
        with pytest.raises(ValueError):
            BPMFConfig(iterations=0)

    def test_dims_prefer_dataset(self, small_dataset):
        cfg = BPMFConfig(dataset=small_dataset)
        assert cfg.dims() == (150, 40, small_dataset.nnz)
        cfg2 = BPMFConfig(num_compounds=5, num_targets=3, nnz=7)
        assert cfg2.dims() == (5, 3, 7)


@pytest.mark.parametrize("variant", ["ori", "hybrid"])
class TestLearning:
    def test_rmse_decreases(self, small_dataset, variant):
        cfg = BPMFConfig(
            dataset=small_dataset, iterations=5, latent_dim=6,
            variant=variant, per_item_overhead=0.0,
            per_iteration_overhead=0.0,
        )
        res = run(bpmf_program, nodes=2, cores=2, nprocs=4,
                  program_kwargs={"config": cfg})
        rmse = res.returns[0]["rmse"]
        assert len(rmse) == 5
        assert rmse[-1] < rmse[0] * 0.6, rmse

    def test_all_ranks_agree_on_rmse(self, small_dataset, variant):
        cfg = BPMFConfig(
            dataset=small_dataset, iterations=3, latent_dim=6,
            variant=variant, per_item_overhead=0.0,
            per_iteration_overhead=0.0,
        )
        res = run(bpmf_program, nodes=2, cores=2, nprocs=4,
                  program_kwargs={"config": cfg})
        tracks = [tuple(r["rmse"]) for r in res.returns]
        assert len(set(tracks)) == 1  # allreduced metric is global


class TestModelMode:
    def test_runs_at_scale_without_data(self):
        cfg = BPMFConfig(iterations=2, variant="hybrid")
        res = run(bpmf_program, nodes=2, cores=4, nprocs=8,
                  payload_mode="model", program_kwargs={"config": cfg})
        r = res.returns[0]
        assert r["total"] > 0 and r["comm"] > 0
        assert r["rmse"] == []

    def test_hybrid_faster_in_comm(self):
        def comm_time(variant):
            cfg = BPMFConfig(iterations=2, variant=variant)
            res = run(bpmf_program, nodes=2, cores=4, nprocs=8,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["comm"] for r in res.returns)

        assert comm_time("hybrid") < comm_time("ori")
