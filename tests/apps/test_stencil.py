"""Tests for the Jacobi halo-exchange example workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil import StencilConfig, _jacobi_sweep, stencil_program
from tests.helpers import run


def reference_jacobi(global_grid: np.ndarray, iterations: int) -> np.ndarray:
    """Single-process reference of the distributed stencil."""
    g = global_grid.copy()
    for _ in range(iterations):
        padded = np.zeros((g.shape[0] + 2, g.shape[1]))
        padded[1:-1] = g
        new = g.copy()
        new[:, 1:-1] = 0.25 * (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        )
        g = new
    return g


def build_global(nprocs: int, rows: int, cols: int) -> np.ndarray:
    strips = [
        np.sin(np.arange(rows * cols, dtype=np.float64) + rank).reshape(
            rows, cols
        )
        for rank in range(nprocs)
    ]
    return np.vstack(strips)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(variant="weird")
        with pytest.raises(ValueError):
            StencilConfig(rows_per_rank=0)


@pytest.mark.parametrize("variant", ["pure", "hybrid"])
class TestAgainstReference:
    def test_matches_serial_jacobi(self, variant):
        rows, cols, iters, nprocs = 4, 8, 3, 4
        cfg = StencilConfig(
            rows_per_rank=rows, cols=cols, iterations=iters, variant=variant
        )
        res = run(stencil_program, nodes=2, cores=2, nprocs=nprocs,
                  program_kwargs={"config": cfg})
        expected = reference_jacobi(
            build_global(nprocs, rows, cols), iters
        )
        total = sum(r["checksum"] for r in res.returns)
        assert total == pytest.approx(float(expected.sum()), abs=1e-9)


class TestVariantEquivalence:
    @pytest.mark.parametrize("nodes,cores", [(1, 4), (2, 3), (3, 2)])
    def test_checksums_identical(self, nodes, cores):
        sums = {}
        for variant in ("pure", "hybrid"):
            cfg = StencilConfig(
                rows_per_rank=4, cols=6, iterations=4, variant=variant
            )
            res = run(stencil_program, nodes=nodes, cores=cores,
                      program_kwargs={"config": cfg})
            sums[variant] = sum(r["checksum"] for r in res.returns)
        assert sums["pure"] == pytest.approx(sums["hybrid"], abs=1e-12)

    def test_hybrid_avoids_on_node_copies(self):
        cfg_kwargs = dict(rows_per_rank=8, cols=32, iterations=2)
        res_pure = run(
            stencil_program, nodes=1, cores=4, nprocs=4,
            program_kwargs={
                "config": StencilConfig(variant="pure", **cfg_kwargs)
            },
        )
        res_hy = run(
            stencil_program, nodes=1, cores=4, nprocs=4,
            program_kwargs={
                "config": StencilConfig(variant="hybrid", **cfg_kwargs)
            },
        )
        assert res_hy.intra_copies < res_pure.intra_copies


class TestSweepKernel:
    def test_interior_update(self):
        interior = np.ones((3, 4))
        out = _jacobi_sweep(interior, None, None)
        # interior column points with all-ones neighbours: edges of the
        # strip see zero halos above/below.
        assert out[1, 1] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(0.75)

    def test_halos_enter_update(self):
        interior = np.zeros((1, 3))
        up = np.ones(3)
        out = _jacobi_sweep(interior, up, None)
        assert out[0, 1] == pytest.approx(0.25)


class TestOverlap:
    @pytest.mark.parametrize("variant", ["pure", "hybrid"])
    def test_overlap_checksum_matches_blocking(self, variant):
        checksums = {}
        for overlap in (False, True):
            cfg = StencilConfig(rows_per_rank=8, cols=16, iterations=4,
                                variant=variant, overlap=overlap)
            res = run(stencil_program, nodes=2, cores=2, nprocs=4,
                      program_kwargs={"config": cfg})
            checksums[overlap] = [r["checksum"] for r in res.returns]
        assert checksums[False] == checksums[True]

    @pytest.mark.parametrize("variant", ["pure", "hybrid"])
    def test_overlap_no_slower_in_model_mode(self, variant):
        def total(overlap):
            cfg = StencilConfig(rows_per_rank=256, cols=2048,
                                iterations=4, variant=variant,
                                overlap=overlap)
            res = run(stencil_program, nodes=2, cores=4, nprocs=8,
                      payload_mode="model",
                      program_kwargs={"config": cfg})
            return max(r["total"] for r in res.returns)

        assert total(True) <= total(False)
