"""Importable helpers shared by the test modules.

(Fixtures live in ``conftest.py``; these are plain functions importable
as ``from tests.helpers import run``.)
"""

from __future__ import annotations

import numpy as np

from repro.machine import testing_machine
from repro.mpi import run_program

__all__ = ["run", "returns_of", "assert_allclose"]


def run(program, *, nodes=2, cores=4, nprocs=None, placement=None,
        spec=None, **options):
    """Run a rank program on a small testing machine; returns JobResult."""
    spec = spec or testing_machine(num_nodes=nodes, cores=cores)
    if placement is None and nprocs is None:
        nprocs = nodes * cores
    return run_program(spec, nprocs, program, placement=placement, **options)


def returns_of(program, **kwargs):
    """Run and return only the per-rank return values."""
    return run(program, **kwargs).returns


def assert_allclose(actual, expected, **kwargs):
    """numpy allclose with array coercion."""
    np.testing.assert_allclose(np.asarray(actual), np.asarray(expected),
                               **kwargs)
