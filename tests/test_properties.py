"""Property-based tests (hypothesis) on core data structures & invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import NodeSortedLayout
from repro.machine import Placement
from repro.mpi import Bytes
from repro.mpi.collectives.blocks import BlockSet
from repro.mpi.collectives.reduce import combine
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import clone, copy_into, nbytes_of
from repro.simulator import Engine

# Keep rank-program properties cheap: small shapes, few examples.
_SMALL = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Placement properties
# ---------------------------------------------------------------------------

placements = st.one_of(
    st.builds(
        Placement.block,
        st.integers(1, 6),
        st.integers(1, 8),
    ),
    st.builds(
        Placement.round_robin,
        st.integers(1, 6),
        st.integers(1, 8),
    ),
    st.builds(
        Placement.irregular,
        st.lists(st.integers(1, 8), min_size=1, max_size=6),
    ),
)


@given(placements)
@_SMALL
def test_placement_partitions_ranks(p: Placement):
    """Every rank is on exactly one node; nodes partition the ranks."""
    seen = []
    for node in range(p.num_nodes):
        ranks = p.ranks_on(node)
        assert ranks == sorted(ranks)
        seen.extend(ranks)
    assert sorted(seen) == list(range(p.num_ranks))


@given(placements)
@_SMALL
def test_placement_leader_is_min_rank(p: Placement):
    for node in range(p.num_nodes):
        assert p.leader_of(node) == min(p.ranks_on(node))
    assert len(p.leaders()) == p.num_nodes


@given(placements)
@_SMALL
def test_placement_slot_consistency(p: Placement):
    for node in range(p.num_nodes):
        for slot, rank in enumerate(p.ranks_on(node)):
            assert p.slot_of(rank) == slot
            assert p.node_of(rank) == node


@given(placements)
@_SMALL
def test_node_sorted_ranks_is_permutation(p: Placement):
    ns = p.node_sorted_ranks()
    assert sorted(ns) == list(range(p.num_ranks))


# ---------------------------------------------------------------------------
# NodeSortedLayout properties
# ---------------------------------------------------------------------------

@given(placements)
@_SMALL
def test_layout_slots_are_bijective(p: Placement):
    lay = NodeSortedLayout(tuple(range(p.num_ranks)), p)
    slots = [lay.slot_of_rank(r) for r in range(p.num_ranks)]
    assert sorted(slots) == list(range(p.num_ranks))
    for r in range(p.num_ranks):
        assert lay.rank_of_slot(lay.slot_of_rank(r)) == r


@given(placements)
@_SMALL
def test_layout_node_regions_tile_the_buffer(p: Placement):
    lay = NodeSortedLayout(tuple(range(p.num_ranks)), p)
    start = 0
    for node in lay.nodes:
        assert lay.node_slot_start(node) == start
        start += lay.node_count(node)
    assert start == p.num_ranks


# ---------------------------------------------------------------------------
# Payload properties
# ---------------------------------------------------------------------------

payloads = st.one_of(
    st.integers(0, 4096).map(Bytes),
    st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=64
    ).map(lambda xs: np.asarray(xs, dtype=np.float64)),
)


@given(payloads)
@_SMALL
def test_clone_preserves_size_and_value(p):
    c = clone(p)
    assert nbytes_of(c) == nbytes_of(p)
    if isinstance(p, np.ndarray):
        np.testing.assert_array_equal(c, p)


@given(st.lists(st.floats(-1e3, 1e3, allow_nan=False),
                min_size=1, max_size=32))
@_SMALL
def test_copy_into_roundtrip(xs):
    src = np.asarray(xs)
    dst = np.empty_like(src)
    copy_into(dst, src)
    np.testing.assert_array_equal(dst, src)


@given(
    st.dictionaries(st.integers(0, 20), st.integers(0, 512).map(Bytes),
                    max_size=8)
)
@_SMALL
def test_blockset_nbytes_is_sum(blocks):
    bs = BlockSet(blocks)
    assert bs.nbytes == sum(b.nbytes for b in blocks.values())
    snap = bs.sim_clone()
    assert snap.nbytes == bs.nbytes
    assert snap.owners() == bs.owners()


@given(
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=16),
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=16),
    st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]),
)
@_SMALL
def test_combine_matches_numpy(a, b, op):
    n = min(len(a), len(b))
    x = np.asarray(a[:n])
    y = np.asarray(b[:n])
    ref = {
        ReduceOp.SUM: np.add, ReduceOp.MIN: np.minimum,
        ReduceOp.MAX: np.maximum,
    }[op](x, y)
    np.testing.assert_allclose(combine(x, y, op), ref)


@given(
    st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]),
    st.lists(
        st.lists(st.floats(-100, 100, allow_nan=False),
                 min_size=4, max_size=4),
        min_size=2, max_size=6,
    ),
)
@_SMALL
def test_combine_is_associative_under_reordering(op, vectors):
    """Tree reduction order must not change SUM/MIN/MAX results
    (up to float tolerance)."""
    arrays = [np.asarray(v) for v in vectors]
    left = arrays[0]
    for a in arrays[1:]:
        left = combine(left, a, op)
    right = arrays[-1]
    for a in reversed(arrays[:-1]):
        right = combine(a, right, op)
    np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Engine determinism property
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(0.0, 10.0, allow_nan=False),
                min_size=1, max_size=12))
@_SMALL
def test_engine_completion_order_deterministic(delays):
    def trace():
        eng = Engine()
        order = []

        def proc(i, d):
            yield eng.timeout(d)
            order.append(i)

        for i, d in enumerate(delays):
            eng.spawn(proc(i, d))
        eng.run()
        return order

    first = trace()
    assert first == trace()
    # Completion order sorts by (delay, spawn index).  Delays are
    # quantized to the engine's tick grid (ceil to whole ticks), so
    # delays within one tick of each other are simultaneous and fall
    # back to spawn order.
    expected = sorted(
        range(len(delays)),
        key=lambda i: (math.ceil(delays[i] * 2.0**50), i),
    )
    assert first == expected


# ---------------------------------------------------------------------------
# End-to-end collective invariants on random shapes
# ---------------------------------------------------------------------------

@given(
    nodes=st.integers(1, 3),
    cores=st.integers(1, 4),
    count=st.integers(1, 16),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_allgather_complete_and_ordered(nodes, cores, count):
    from tests.helpers import returns_of

    def prog(mpi):
        comm = mpi.world
        mine = np.full(count, float(comm.rank))
        blocks = yield from comm.allgather(mine)
        return [float(np.asarray(b).reshape(-1)[0]) for b in blocks]

    rets = returns_of(prog, nodes=nodes, cores=cores)
    expected = [float(r) for r in range(nodes * cores)]
    assert all(r == expected for r in rets)


@given(
    nodes=st.integers(1, 3),
    cores=st.integers(1, 4),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hybrid_allgather_equals_pure(nodes, cores):
    """The paper's central semantic claim: the hybrid allgather delivers
    exactly the pure-MPI allgather's result (one shared copy per node)."""
    from repro.core import HybridContext
    from tests.helpers import returns_of

    def pure(mpi):
        comm = mpi.world
        mine = np.arange(4.0) + comm.rank * 10
        blocks = yield from comm.allgather(mine)
        return list(np.concatenate([np.asarray(b).reshape(-1)
                                    for b in blocks]))

    def hybrid(mpi):
        comm = mpi.world
        ctx = yield from HybridContext.create(comm)
        buf = yield from ctx.allgather_buffer(32)
        buf.local_view(np.float64)[:] = np.arange(4.0) + comm.rank * 10
        yield from ctx.allgather(buf)
        return list(buf.node_view(np.float64))

    a = returns_of(pure, nodes=nodes, cores=cores)
    b = returns_of(hybrid, nodes=nodes, cores=cores)
    assert a == b
