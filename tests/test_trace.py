"""Tests of the span tracer and its exports (repro/trace.py)."""

from __future__ import annotations

import json

import pytest

from repro.mpi import Bytes, run_program
from repro.mpi.profiler import aggregate_profiles
from repro.trace import (
    DETAIL_LEVELS,
    Tracer,
    format_timeline,
    save_chrome_trace,
    summarize,
    to_chrome_trace,
)
from tests.helpers import run


def allgather_program(mpi):
    result = yield from mpi.world.allgather(Bytes(64))
    return len(result)


def mixed_program(mpi):
    yield from mpi.world.allgather(Bytes(64))
    yield from mpi.world.bcast(Bytes(256), root=0)
    yield from mpi.world.barrier()
    return mpi.now


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------

def test_detail_levels_are_ordered():
    assert DETAIL_LEVELS["dispatch"] < DETAIL_LEVELS["phase"] \
        < DETAIL_LEVELS["p2p"]
    t = Tracer(detail="phase")
    assert t.wants("dispatch") and t.wants("phase") and not t.wants("p2p")


def test_unknown_detail_rejected():
    with pytest.raises(ValueError, match="unknown trace detail"):
        Tracer(detail="everything")


def test_span_nesting_links_parent_and_depth():
    t = Tracer(detail="phase")
    a = t.begin({"t": 0.0, "rank": 0, "op": "x", "algo": "y",
                 "kind": "dispatch"})
    b = t.begin({"t": 1.0, "rank": 0, "kind": "phase", "phase": "p"})
    c = t.begin({"t": 1.0, "rank": 1, "kind": "phase", "phase": "q"})
    assert a["parent"] is None and a["depth"] == 0
    assert b["parent"] == a["sid"] and b["depth"] == 1
    # Other ranks have their own stacks.
    assert c["parent"] is None and c["depth"] == 0
    t.end(b, 2.0)
    t.end(a, 3.0)
    assert b["dur"] == 1.0 and a["dur"] == 3.0
    # Stream order is begin order.
    assert t.records == [a, b, c]


# ---------------------------------------------------------------------------
# Back-compat: default tracing looks like the old instant-event log
# ---------------------------------------------------------------------------

def test_default_trace_one_record_per_collective():
    result = run(mixed_program, nodes=2, cores=2, trace=True,
                 payload_mode="model")
    ops = [r["op"] for r in result.trace]
    nranks = 4
    assert ops.count("allgather") == nranks
    assert ops.count("bcast") == nranks
    # Default detail is dispatch-only: no phase records.
    assert all(r.get("kind", "dispatch") == "dispatch" for r in result.trace)
    for r in result.trace:
        assert {"t", "rank", "comm", "op", "algo", "nbytes"} <= set(r)


def test_phase_detail_adds_nested_children():
    result = run(mixed_program, nodes=2, cores=2, trace="phase",
                 payload_mode="model")
    phases = [r for r in result.trace if r.get("kind") == "phase"]
    assert phases, "phase detail must add phase spans"
    by_sid = {r["sid"]: r for r in result.trace if "sid" in r}
    for ph in phases:
        assert ph["parent"] in by_sid
        assert ph["depth"] >= 1


def test_p2p_detail_adds_waits():
    result = run(mixed_program, nodes=2, cores=2, trace="p2p",
                 payload_mode="model")
    kinds = {r.get("kind", "dispatch") for r in result.trace}
    assert "queue_wait" in kinds


# ---------------------------------------------------------------------------
# Determinism (acceptance criterion)
# ---------------------------------------------------------------------------

def test_same_program_yields_bit_identical_span_stream():
    streams = []
    for _ in range(2):
        result = run(mixed_program, nodes=2, cores=2, trace="p2p",
                     payload_mode="model")
        streams.append(json.dumps(result.trace, sort_keys=True))
    assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

def test_chrome_trace_schema(tmp_path):
    result = run(mixed_program, nodes=2, cores=2, trace="phase",
                 payload_mode="model")
    doc = to_chrome_trace(result.trace)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    phs = {e["ph"] for e in events}
    assert "X" in phs and "M" in phs
    for e in events:
        assert {"name", "ph", "pid", "tid"} <= set(e)
        if e["ph"] == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0
        if e["ph"] == "i":
            assert e["s"] == "t"
    # Metadata: one thread_name row per rank.
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["tid"] for e in meta} == set(range(4))
    assert all(e["name"] == "thread_name" for e in meta)
    # Round-trips through JSON.
    path = tmp_path / "trace.json"
    save_chrome_trace(result.trace, str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_chrome_trace_nesting_balanced():
    """Per rank, children lie within their parent's [ts, ts+dur]."""
    result = run(mixed_program, nodes=2, cores=2, trace="phase",
                 payload_mode="model")
    by_sid = {r["sid"]: r for r in result.trace if "sid" in r}
    eps = 1e-12
    for rec in result.trace:
        parent = by_sid.get(rec.get("parent"))
        if parent is None:
            continue
        assert rec["t"] >= parent["t"] - eps
        assert rec["t"] + rec["dur"] <= parent["t"] + parent["dur"] + eps


def test_open_spans_exported_as_instants():
    t = Tracer()
    t.begin({"t": 1e-6, "rank": 0, "op": "x", "algo": "y",
             "kind": "dispatch"})
    events = to_chrome_trace(t.records)["traceEvents"]
    assert events[0]["ph"] == "i"


def test_empty_trace_handling():
    assert to_chrome_trace([]) == {"traceEvents": [],
                                   "displayTimeUnit": "ms"}
    assert summarize([]) == {}
    assert format_timeline([]) == "(empty trace)"


# ---------------------------------------------------------------------------
# summarize vs profiler byte conventions
# ---------------------------------------------------------------------------

def test_summarize_bytes_match_profiler_conventions():
    result = run(allgather_program, nodes=2, cores=2, trace=True,
                 payload_mode="model")
    summary = summarize(result.trace)
    [(key, agg)] = [(k, v) for k, v in summary.items()
                    if k[0] == "allgather"]
    merged = aggregate_profiles(result.profiles)
    # Dispatch records carry req.total = the same per-rank convention
    # the profiler charges (allgather: local * size), summed over ranks.
    assert agg["calls"] == merged["allgather"].calls
    assert agg["bytes"] == merged["allgather"].bytes
    assert agg["bytes"] == 64 * 4 * 4  # local * size, per rank, 4 ranks


# ---------------------------------------------------------------------------
# format_timeline
# ---------------------------------------------------------------------------

def test_format_timeline_sorts_before_truncating():
    # Insertion order deliberately scrambled across ranks/times.
    trace = [
        {"t": 3e-6, "rank": 0, "op": "c", "algo": "z", "nbytes": 0},
        {"t": 1e-6, "rank": 1, "op": "a", "algo": "z", "nbytes": 0},
        {"t": 1e-6, "rank": 0, "op": "b", "algo": "z", "nbytes": 0},
        {"t": 2e-6, "rank": 0, "op": "d", "algo": "z", "nbytes": 0},
    ]
    out = format_timeline(trace, max_rows=3)
    body = out.splitlines()[1:]
    # Sorted by (t, rank): b(r0) before a(r1), c truncated away.
    assert "b:z" in body[0] and "a:z" in body[1] and "d:z" in body[2]
    assert "c:z" not in out
    assert "+1 more" in out


def test_format_timeline_shows_durations():
    trace = [{"t": 0.0, "rank": 0, "op": "a", "algo": "z", "nbytes": 0,
              "kind": "dispatch", "sid": 1, "parent": None, "depth": 0,
              "dur": 5e-6}]
    out = format_timeline(trace)
    assert "5.00" in out
