"""Tests for the job runner and rank contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Placement, testing_machine as make_testing_spec
from repro.mpi import Bytes, MPIJob, run_program
from repro.simulator import DeadlockError
from tests.helpers import returns_of, run


class TestJobBasics:
    def test_returns_indexed_by_rank(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return mpi.world.rank * 10

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets == [0, 10, 20, 30]

    def test_finish_times_recorded(self):
        def prog(mpi):
            yield mpi.compute(1e-3 * (mpi.world.rank + 1))
            return None

        result = run(prog, nodes=1, cores=3, nprocs=3)
        assert result.finish_times == pytest.approx([1e-3, 2e-3, 3e-3])
        assert result.max_rank_time() == pytest.approx(3e-3)
        assert result.elapsed >= result.max_rank_time()

    def test_stats_counted(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(Bytes(100), 1)
            elif comm.rank == 1:
                yield from comm.recv(source=0)
            return None

        result = run(prog, nodes=2, cores=1, nprocs=2)
        assert result.sent_messages == 1
        assert result.sent_bytes == 100
        assert result.network_messages == 1

    def test_deterministic_repeat(self):
        def prog(mpi):
            blocks = yield from mpi.world.allgather(Bytes(64))
            yield from mpi.world.barrier()
            return mpi.now

        a = run(prog, nodes=2, cores=3)
        b = run(prog, nodes=2, cores=3)
        assert a.returns == b.returns
        assert a.events_processed == b.events_processed

    def test_mismatched_nprocs_and_placement(self):
        spec = make_testing_spec(2, 2)
        with pytest.raises(ValueError):
            MPIJob(spec, lambda mpi: None, nprocs=3,
                   placement=Placement.block(2, 2))

    def test_requires_nprocs_or_placement(self):
        spec = make_testing_spec(2, 2)
        with pytest.raises(ValueError):
            MPIJob(spec, lambda mpi: None)

    def test_invalid_payload_mode(self):
        spec = make_testing_spec(1, 1)
        with pytest.raises(ValueError):
            MPIJob(spec, lambda mpi: None, nprocs=1, payload_mode="weird")

    def test_deadlock_reported_with_rank_names(self):
        def prog(mpi):
            if mpi.world.rank == 0:
                yield from mpi.world.recv(source=1)  # never sent
            return None

        with pytest.raises(DeadlockError, match="rank0"):
            run(prog, nodes=1, cores=2, nprocs=2)


class TestRankContext:
    def test_identity_fields(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return (mpi.world_rank, mpi.node, mpi.world.size)

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets == [(0, 0, 4), (1, 0, 4), (2, 1, 4), (3, 1, 4)]

    def test_compute_charges_time(self):
        def prog(mpi):
            yield mpi.compute(0.5)
            return mpi.now

        assert returns_of(prog, nodes=1, cores=1, nprocs=1) == [0.5]

    def test_compute_flops_uses_machine_model(self):
        def prog(mpi):
            yield mpi.compute_flops(1e9, kind="gemm")
            return mpi.now

        # testing machine: 1 GF/s peak * 0.85 gemm efficiency.
        rets = returns_of(prog, nodes=1, cores=1, nprocs=1)
        assert rets[0] == pytest.approx(1 / 0.85)

    def test_payload_helpers_respect_mode(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return (type(mpi.payload(16)).__name__,
                    type(mpi.doubles(4)).__name__)

        assert returns_of(prog, nodes=1, cores=1, nprocs=1) == [
            ("ndarray", "ndarray")
        ]
        assert returns_of(prog, nodes=1, cores=1, nprocs=1,
                          payload_mode="model") == [("Bytes", "Bytes")]

    def test_rank_rngs_are_independent_and_stable(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return float(mpi.rng.random())

        a = returns_of(prog, nodes=1, cores=3, nprocs=3)
        b = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert a == b                       # seeded deterministically
        assert len(set(a)) == 3             # distinct streams per rank

    def test_program_args_forwarded(self):
        def prog(mpi, factor, offset=0):
            yield from mpi.world.barrier()
            return mpi.world.rank * factor + offset

        result = run(
            prog, nodes=1, cores=2, nprocs=2,
            program_args=(10,), program_kwargs={"offset": 1},
        )
        assert result.returns == [1, 11]


class TestPlacementIntegration:
    def test_round_robin_node_assignment(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return mpi.node

        placement = Placement.round_robin(2, 2)
        rets = returns_of(prog, nodes=2, cores=2, placement=placement)
        assert rets == [0, 1, 0, 1]

    def test_irregular_counts(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            return shm.size

        placement = Placement.irregular([3, 1])
        rets = returns_of(prog, nodes=2, cores=4, placement=placement)
        assert rets == [3, 3, 3, 1]
