"""Tests of the collective-algorithm registry and selection policies."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.machine import Placement
from repro.machine import testing_machine as make_testing_spec
from repro.machine.presets import hazel_hen
from repro.mpi import Bytes, run_program
from repro.mpi.collectives import registry
from repro.mpi.collectives.registry import (
    CollRequest,
    CostModelSelection,
    ForcedSelection,
    SelectionPolicy,
    TableSelection,
    resolve_policy,
)
from repro.mpi.constants import ReduceOp
from tests.helpers import run


def traced(prog, *, nodes=1, cores=4, policy=None, placement=None,
           **options):
    spec = make_testing_spec(nodes, cores)
    nprocs = None if placement is not None else nodes * cores
    return run_program(
        spec, nprocs, prog, trace=True, payload_mode="model",
        policy=policy, placement=placement, **options,
    )


def small_allgather(mpi):
    yield from mpi.world.allgather(Bytes(64))


class TestRegistryContents:
    EXPECTED_OPS = {
        "allgather", "allgatherv", "allreduce", "alltoall", "barrier",
        "bcast", "exscan", "gather", "gatherv", "hy_allgather",
        "hy_bcast", "reduce", "reduce_scatter", "scan", "scatter",
    }

    def test_all_ops_registered(self):
        assert set(registry.ops()) == self.EXPECTED_OPS

    def test_every_op_has_algorithms(self):
        for op in registry.ops():
            assert registry.algorithms_for(op), op

    def test_get_algorithm_unknown_name(self):
        with pytest.raises(KeyError, match="ring"):
            registry.get_algorithm("allgather", "bogus")

    def test_descriptors_are_complete(self):
        for op in registry.ops():
            for algo in registry.algorithms_for(op):
                assert algo.op == op
                assert callable(algo.fn)
                assert callable(algo.applicable)
                assert callable(algo.cost)
                assert algo.kind in ("flat", "hierarchical", "hybrid")


class TestResolvePolicy:
    def test_instance_passthrough(self):
        policy = CostModelSelection()
        assert resolve_policy(policy) is policy

    def test_by_name(self):
        assert isinstance(resolve_policy("table"), TableSelection)
        assert isinstance(resolve_policy("cost_model"), CostModelSelection)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            resolve_policy("simulated_annealing")

    def test_empty_env_gives_table(self):
        assert isinstance(resolve_policy(None, env={}), TableSelection)

    def test_env_policy_variable(self):
        policy = resolve_policy(None, env={registry.ENV_POLICY: "cost_model"})
        assert isinstance(policy, CostModelSelection)

    def test_env_op_override_wraps_forced(self):
        policy = resolve_policy(
            None, env={"REPRO_COLL_ALLGATHER": "ring"}
        )
        assert isinstance(policy, ForcedSelection)
        assert policy.overrides == {"allgather": "ring"}
        assert isinstance(policy.base, TableSelection)

    def test_env_override_over_cost_model(self):
        policy = resolve_policy(None, env={
            registry.ENV_POLICY: "cost_model",
            "REPRO_COLL_BCAST": "binomial",
        })
        assert isinstance(policy, ForcedSelection)
        assert isinstance(policy.base, CostModelSelection)

    def test_env_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown collective op"):
            resolve_policy(None, env={"REPRO_COLL_FROBNICATE": "ring"})

    def test_env_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            resolve_policy(None, env={"REPRO_COLL_ALLGATHER": "bogus"})

    def test_forced_constructor_validates_eagerly(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            ForcedSelection({"allgather": "bogus"})


class TestTracePolicyField:
    def test_default_runs_record_table_policy(self):
        result = traced(small_allgather, cores=4)
        recs = [r for r in result.trace if r["op"] == "allgather"]
        assert recs and all(r["policy"] == "table" for r in recs)

    def test_forced_runs_record_forced_policy(self):
        result = traced(
            small_allgather, cores=4,
            policy=ForcedSelection({"allgather": "ring"}),
        )
        recs = [r for r in result.trace if r["op"] == "allgather"]
        assert {r["algo"] for r in recs} == {"ring"}
        assert all(r["policy"] == "forced" for r in recs)


class TestForcedSelection:
    def test_forced_algorithm_is_used(self):
        # Default table picks recursive_doubling here (pof2, small).
        result = traced(small_allgather, cores=4,
                        policy=ForcedSelection({"allgather": "bruck"}))
        assert {r["algo"] for r in result.trace
                if r["op"] == "allgather"} == {"bruck"}

    def test_inapplicable_force_falls_back(self):
        # recursive_doubling is pof2-only; on 3 ranks the table fallback
        # (bruck) must be selected and the run must still complete.
        result = traced(
            small_allgather, cores=3,
            policy=ForcedSelection({"allgather": "recursive_doubling"}),
        )
        assert {r["algo"] for r in result.trace
                if r["op"] == "allgather"} == {"bruck"}

    def test_forced_results_match_reference(self):
        def prog(mpi):
            vec = np.arange(3.0) + 10 * mpi.world.rank
            out = yield from mpi.world.allgather(vec)
            return [list(np.asarray(b)) for b in out]

        ref = run(prog, nodes=1, cores=4).returns
        forced = run(prog, nodes=1, cores=4,
                     policy=ForcedSelection({"allgather": "ring"})).returns
        assert forced == ref

    def test_job_accepts_policy_name_string(self):
        result = traced(small_allgather, cores=4, policy="cost_model")
        recs = [r for r in result.trace if r["op"] == "allgather"]
        assert recs and all(r["policy"] == "cost_model" for r in recs)


class TestCostModelSelection:
    def test_results_match_table_policy(self):
        def prog(mpi):
            comm = mpi.world
            vec = np.array([float(comm.rank)] * 4)
            total = yield from comm.allreduce(vec, ReduceOp.SUM)
            blocks = yield from comm.allgather(np.asarray(total))
            return [list(np.asarray(b)) for b in blocks]

        table = run(prog, nodes=2, cores=2).returns
        cost = run(prog, nodes=2, cores=2, policy="cost_model").returns
        assert cost == table

    def test_deterministic(self):
        a = traced(small_allgather, cores=4, policy="cost_model")
        b = traced(small_allgather, cores=4, policy="cost_model")
        key = lambda res: [(r["op"], r["algo"]) for r in res.trace]
        assert key(a) == key(b)

    def test_picks_minimum_cost_candidate(self):
        result = traced(small_allgather, cores=4, policy="cost_model")
        chosen = {r["algo"] for r in result.trace
                  if r["op"] == "allgather"}
        assert len(chosen) == 1
        # Recompute the argmin from the registry's own estimators.
        job_probe = []

        def probe(mpi):
            job_probe.append(mpi.world)
            yield from mpi.world.barrier()

        run(probe, nodes=1, cores=4)
        comm = job_probe[0]
        req = CollRequest(op="allgather", nbytes=64, total=64 * 4)
        cands = [d for d in registry.algorithms_for("allgather")
                 if d.applicable(comm, req)]
        best = min(cands, key=lambda d: d.cost(comm, req))
        assert chosen == {best.name}

    def test_costs_are_positive_finite(self):
        job_probe = []

        def probe(mpi):
            job_probe.append(mpi.world)
            yield from mpi.world.barrier()

        run(probe, nodes=2, cores=2)
        comm = job_probe[0]
        for op in registry.ops():
            req = CollRequest(op=op, nbytes=1024, total=4096, root=0)
            for algo in registry.algorithms_for(op):
                if not algo.applicable(comm, req):
                    continue
                cost = algo.cost(comm, req)
                assert np.isfinite(cost) and cost >= 0, (op, algo.name)


class TestHybridSelection:
    def _hybrid_prog(self, mpi):
        from repro.core import HybridContext

        ctx = yield from HybridContext.create(mpi.world)
        buf = yield from ctx.allgather_buffer(64)
        yield from ctx.allgather(buf)

    def test_hy_allgather_traced(self):
        result = traced(self._hybrid_prog, nodes=2, cores=2)
        recs = [r for r in result.trace if r["op"] == "hy_allgather"]
        assert {r["algo"] for r in recs} == {"shared_window"}

    def test_forced_pipelined_ring(self):
        result = traced(
            self._hybrid_prog, nodes=2, cores=2,
            policy=ForcedSelection({"hy_allgather": "pipelined_ring"}),
        )
        recs = [r for r in result.trace if r["op"] == "hy_allgather"]
        assert {r["algo"] for r in recs} == {"pipelined_ring"}

    def test_caller_override_beats_policy(self):
        from repro.core import HybridContext

        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(64)
            yield from ctx.allgather(buf, pipelined=True)

        result = traced(prog, nodes=2, cores=2)
        recs = [r for r in result.trace if r["op"] == "hy_allgather"]
        assert {r["algo"] for r in recs} == {"pipelined_ring"}
        assert {r["policy"] for r in recs} == {"caller"}


class TestSelectionErrors:
    def test_no_applicable_candidate_raises(self):
        from repro.simulator.engine import SimulationError

        class NonePolicy(SelectionPolicy):
            name = "none"

            def select(self, comm, req, candidates=None):
                return super().select(comm, req, candidates=())

        def prog(mpi):
            yield from mpi.world.allgather(Bytes(8))

        with pytest.raises(SimulationError) as excinfo:
            run(prog, nodes=1, cores=2, policy=NonePolicy(),
                payload_mode="model")
        assert "no applicable algorithm" in str(excinfo.value.__cause__)


class TestProfileCoverage:
    """Satellite (a): every collective records into the profiler."""

    ALL_OPS = [
        "allgather", "allgatherv", "allreduce", "alltoall", "barrier",
        "bcast", "exscan", "gather", "gatherv", "reduce",
        "reduce_scatter", "scan", "scatter",
    ]

    def _everything_prog(self, mpi):
        comm = mpi.world
        vec = np.arange(4.0) + comm.rank
        yield from comm.barrier()
        yield from comm.bcast(vec, root=0)
        yield from comm.gather(vec, root=0)
        yield from comm.gatherv(vec[: 1 + comm.rank % 2], root=0)
        parts = (
            [np.full(2, float(r)) for r in range(comm.size)]
            if comm.rank == 1 else None
        )
        yield from comm.scatter(parts, root=1)
        yield from comm.reduce(vec, ReduceOp.SUM, root=0)
        yield from comm.allreduce(vec, ReduceOp.MAX)
        yield from comm.alltoall(
            [np.array([float(comm.rank * comm.size + p)])
             for p in range(comm.size)]
        )
        yield from comm.scan(vec, ReduceOp.SUM)
        yield from comm.exscan(vec, ReduceOp.SUM)
        yield from comm.reduce_scatter(
            np.arange(float(comm.size * 2)), ReduceOp.SUM
        )
        yield from comm.allgather(vec)
        yield from comm.allgatherv(vec[: 1 + comm.rank % 3])

    def test_every_op_appears_in_profile(self):
        result = run(self._everything_prog, nodes=2, cores=2)
        summary = result.comm_summary()
        for op in self.ALL_OPS:
            assert op in summary, f"{op} missing from profile"
            assert summary[op]["calls"] == 4  # one call on each rank
            assert summary[op]["time"] > 0.0

    def test_barrier_records_zero_bytes(self):
        result = run(self._everything_prog, nodes=2, cores=2)
        assert result.comm_summary()["barrier"]["bytes"] == 0

    def test_nonblocking_ops_profiled_under_i_names(self):
        def prog(mpi):
            comm = mpi.world
            req1 = comm.iallgather(np.array([1.0 * comm.rank]))
            req2 = comm.ibarrier()
            yield from comm.wait(req1)
            yield from comm.wait(req2)

        summary = run(prog, nodes=1, cores=4).comm_summary()
        assert "iallgather" in summary
        assert "ibarrier" in summary


class TestAllgathervByteAccounting:
    """Satellite (b): allgatherv charges the true sum of per-rank sizes."""

    def test_irregular_bytes_sum_actual_sizes(self):
        counts = [1, 3, 2, 5]  # doubles contributed per rank

        def prog(mpi):
            comm = mpi.world
            mine = np.full(counts[comm.rank], float(comm.rank))
            yield from comm.allgatherv(mine)

        result = run(prog, nodes=1, cores=4)
        stats = result.comm_summary()["allgatherv"]
        total = 8 * sum(counts)  # true payload, not local * size
        assert stats["bytes"] == total * 4  # each of 4 ranks charges total
        assert stats["calls"] == 4

    def test_regular_allgather_unchanged(self):
        def prog(mpi):
            yield from mpi.world.allgather(np.zeros(2))

        stats = run(prog, nodes=1, cores=4).comm_summary()["allgather"]
        assert stats["bytes"] == (8 * 2 * 4) * 4


class TestBehaviorPreservation:
    """Default TableSelection reproduces the pre-registry selections
    (trace-level equality on the Fig 7 / Fig 9 benchmark configs)."""

    @staticmethod
    def _multiset(spec, placement, nbytes, variant):
        from repro.bench.osu import (
            hybrid_allgather_program,
            pure_allgather_program,
        )

        prog = (pure_allgather_program if variant == "pure"
                else hybrid_allgather_program)
        result = run_program(
            spec, None, prog, placement=placement, payload_mode="model",
            trace=True,
            program_kwargs={"nbytes_per_rank": nbytes, "reps": 1},
        )
        # Only mpi-layer dispatches: the hy_* records are a new,
        # additive tracing feature of the registry refactor.
        return Counter(
            (r["op"], r["algo"]) for r in result.trace
            if not r["op"].startswith("hy_")
        )

    # Counts are warmup + 1 timed rep per rank.  The OSU harness's
    # align-delimited protocol (see repro.bench.osu) realigns ranks with
    # Comm.align(), which is not a dispatch — the barrier records the
    # old inter-repetition barrier used to contribute are gone, and the
    # algorithm selections are what this test actually pins.

    def test_fig7_single_node(self):
        spec, placement = hazel_hen(1), Placement.block(1, 24)
        assert self._multiset(spec, placement, 8 * 64, "pure") == {
            ("allgather", "bruck"): 48,
        }
        assert self._multiset(spec, placement, 8 * 16384, "pure") == {
            ("allgather", "ring"): 48,
        }
        assert self._multiset(spec, placement, 8 * 64, "hybrid") == {
            ("barrier", "shm_flags"): 48,
        }

    def test_fig9_multi_node(self):
        spec, placement = hazel_hen(16), Placement.block(16, 12)
        assert self._multiset(spec, placement, 8 * 64, "pure") == {
            ("allgather", "smp_hierarchical"): 384,
        }
        assert self._multiset(spec, placement, 8 * 64, "hybrid") == {
            ("allgatherv", "bruck_v"): 32,
            ("barrier", "shm_flags"): 768,
        }
