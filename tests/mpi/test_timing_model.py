"""Analytic timing assertions: collectives must cost what the model says.

These tests pin the cost composition of key paths with hand-computed
expectations on the round-number testing machine (alpha 1 µs, network
1 GB/s, per-stream memory 5 GB/s, shm hop 0.1 µs), catching accidental
double-charging or dropped cost terms during refactors.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.machine import Placement, testing_machine as make_testing_spec
from repro.mpi import Bytes, run_program
from repro.mpi.collectives.tuning import generic_tuning
from tests.helpers import returns_of


def timed_collective(op_name, nbytes, *, nodes=1, cores=4, placement=None,
                     tuning=None):
    def prog(mpi):
        comm = mpi.world
        payload = Bytes(nbytes)
        yield from comm.barrier()
        t0 = mpi.now
        if op_name == "allgather":
            yield from comm.allgather(payload)
        elif op_name == "bcast":
            yield from comm.bcast(payload, root=0)
        elif op_name == "barrier":
            yield from comm.barrier()
        else:
            raise ValueError(op_name)
        return mpi.now - t0

    spec = make_testing_spec(nodes, cores)
    nprocs = None if placement is not None else nodes * cores
    result = run_program(spec, nprocs, prog, payload_mode="model",
                         placement=placement, tuning=tuning)
    return max(result.returns)


class TestBarrierCost:
    def test_single_node_formula(self):
        # shm barrier: base + ceil(log2 p) * flag.
        tuning = generic_tuning()
        for cores in (2, 4, 8):
            t = timed_collective("barrier", 0, cores=cores)
            rounds = math.ceil(math.log2(cores))
            expected = (
                tuning.shm_barrier_base + rounds * tuning.shm_barrier_flag
            )
            assert t == pytest.approx(expected), cores

    def test_barrier_independent_of_prior_payload_size(self):
        a = timed_collective("barrier", 0, cores=8)
        b = timed_collective("barrier", 0, cores=8)
        assert a == b


class TestP2PComposition:
    def test_internode_eager_cost(self):
        # alpha (1 us) + n / 1 GB/s, receiver side.
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(Bytes(2000), 1)
                return None
            t0 = mpi.now
            yield from comm.recv(source=0)
            return mpi.now - t0

        rets = returns_of(prog, nodes=2, cores=1, nprocs=2)
        assert rets[1] == pytest.approx(1.0e-6 + 2000 / 1.0e9)

    def test_internode_rendezvous_adds_round_trip(self):
        def make(nbytes):
            def prog(mpi):
                comm = mpi.world
                if comm.rank == 0:
                    yield from comm.send(Bytes(nbytes), 1)
                    return None
                t0 = mpi.now
                yield from comm.recv(source=0)
                return mpi.now - t0

            return prog

        eager = returns_of(make(4096), nodes=2, cores=1, nprocs=2)[1]
        rendezvous = returns_of(make(4097), nodes=2, cores=1, nprocs=2)[1]
        # Handshake = 2 * latency = 2 us on the flat testing network.
        assert rendezvous - eager == pytest.approx(2.0e-6, rel=0.01)

    def test_intranode_lmt_single_copy(self):
        # Large on-node message: latency + ONE contended copy (2n bytes
        # through the 5 GB/s stream).
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(Bytes(100_000), 1)
                return None
            t0 = mpi.now
            yield from comm.recv(source=0)
            return mpi.now - t0

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        expected = 1.0e-7 + 2 * 100_000 / 5.0e9
        assert rets[1] == pytest.approx(expected, rel=0.01)


class TestCollectiveComposition:
    def test_allgather_rd_round_structure(self):
        # Flat RD on 1 rank/node machines: each of log2(p) rounds costs
        # one alpha plus the growing transfer; with tiny payloads the
        # total ≈ call_overhead + log2(p) * alpha.
        tuning = generic_tuning()
        placement = Placement.irregular([1] * 8)
        t = timed_collective(
            "allgather", 8, nodes=8, cores=1, placement=placement
        )
        floor = tuning.call_overhead + 3 * 1.0e-6
        assert floor <= t <= floor * 1.6

    def test_bcast_binomial_depth(self):
        placement = Placement.irregular([1] * 8)
        tuning = generic_tuning()
        t = timed_collective(
            "bcast", 64, nodes=8, cores=1, placement=placement
        )
        floor = tuning.call_overhead + 3 * 1.0e-6  # depth log2(8)=3
        assert floor <= t <= floor * 1.6

    def test_hierarchical_allgather_beats_flat_on_nodes(self):
        smp = generic_tuning()
        flat = generic_tuning().with_(smp_aware=False)
        t_smp = timed_collective("allgather", 4096, nodes=2, cores=4,
                                 tuning=smp)
        t_flat = timed_collective("allgather", 4096, nodes=2, cores=4,
                                  tuning=flat)
        # The SMP-aware baseline must be no worse than flat RD here —
        # the honesty condition for the paper comparison.
        assert t_smp <= t_flat * 1.05

    def test_vector_overhead_charged_once(self):
        tuning = generic_tuning()

        def prog(mpi):
            comm = mpi.world
            yield from comm.barrier()
            t0 = mpi.now
            yield from comm.allgatherv(Bytes(8))
            return mpi.now - t0

        placement = Placement.irregular([1, 1])
        spec = make_testing_spec(2, 1)
        t = max(run_program(spec, None, prog, payload_mode="model",
                            placement=placement).returns)
        # allgatherv = call overhead + per-block vector overhead * p
        # + one bruck round (alpha + transfer).
        floor = (
            tuning.call_overhead
            + 2 * tuning.vector_block_overhead
            + 1.0e-6
        )
        assert t == pytest.approx(floor, rel=0.25)


class TestContentionEffects:
    def test_allgather_scales_worse_with_more_on_node_ranks(self):
        # Pure allgather per-byte cost grows with ppn (memory contention).
        def per_rank_time(cores):
            return timed_collective("allgather", 50_000, nodes=1,
                                    cores=cores)

        t4, t8 = per_rank_time(4), per_rank_time(8)
        # Doubling ppn more than doubles the time (superlinear in the
        # contended regime: more data AND more contention).
        assert t8 > 2.0 * t4

    def test_nic_contention_visible_in_fan_in(self):
        # Many nodes sending to one: receiver NIC serializes.
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                reqs = [
                    comm.irecv(source=s, tag=1)
                    for s in range(1, comm.size)
                ]
                t0 = mpi.now
                yield from comm.waitall(reqs)
                return mpi.now - t0
            yield from comm.send(Bytes(4000), 0, tag=1)
            return None

        placement = Placement.irregular([1] * 5)
        spec = make_testing_spec(5, 1)
        result = run_program(spec, None, prog, payload_mode="model",
                             placement=placement)
        t = result.returns[0]
        serialization = 4 * 4000 / 1.0e9  # 4 messages through one NIC
        assert t >= serialization
