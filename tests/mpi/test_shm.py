"""Tests for the MPI-3 shared-memory window model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.errors import WindowError
from tests.helpers import returns_of, run


class TestAllocation:
    def test_leader_allocates_children_query(self):
        # The paper's allocation pattern (Fig 4 line 13): whole size at
        # the leader, zero at the children.
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            size = 32 if shm.rank == 0 else 0
            win = yield from mpi.win_allocate_shared(shm, size)
            return (win.total_bytes, win.size_of(0), win.size_of(1))

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == (32, 32, 0) for r in rets)

    def test_contiguous_layout_across_ranks(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(shm, 8 * (shm.rank + 1))
            return [win.offset_of(r) for r in range(shm.size)]

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert rets[0] == [0, 8, 24]  # sizes 8, 16, 24 in rank order

    def test_multi_node_comm_rejected(self):
        def prog(mpi):
            try:
                yield from mpi.win_allocate_shared(mpi.world, 8)
            except WindowError:
                yield from mpi.world.barrier()
                return "rejected"
            return "accepted"

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == "rejected" for r in rets)

    def test_negative_size_rejected(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            try:
                yield from mpi.win_allocate_shared(shm, -1)
            except WindowError:
                yield from shm.barrier()
                return "rejected"
            return "accepted"

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == "rejected" for r in rets)


class TestSharing:
    def test_stores_visible_to_all_members(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(
                shm, 8 * shm.size if shm.rank == 0 else 0
            )
            view = win.whole(np.float64)
            view[shm.rank] = mpi.world.rank * 1.5
            yield from shm.barrier()
            return list(view)

        rets = returns_of(prog, nodes=2, cores=3)
        assert rets[0] == [0.0, 1.5, 3.0]       # node 0: world ranks 0-2
        assert rets[3] == [4.5, 6.0, 7.5]       # node 1: world ranks 3-5

    def test_nodes_have_independent_windows(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(
                shm, 8 if shm.rank == 0 else 0
            )
            if shm.rank == 0:
                win.whole(np.float64)[0] = float(mpi.node + 100)
            yield from shm.barrier()
            return float(win.whole(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets[:2] == [100.0, 100.0]
        assert rets[2:] == [101.0, 101.0]

    def test_segment_view_is_shared_query(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(shm, 16)
            seg = win.segment(shm.rank, np.float64)
            seg[:] = shm.rank + 0.25
            yield from shm.barrier()
            # Read the peer's segment directly (shared_query semantics).
            peer = (shm.rank + 1) % shm.size
            return float(win.segment(peer, np.float64)[0])

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets == [1.25, 0.25]

    def test_model_mode_has_no_storage(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(shm, 1 << 20)
            return win.whole() is None and win.segment(0) is None

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2,
                          payload_mode="model")
        assert all(rets)


class TestCostsAndFlags:
    def test_touch_charges_memory_time(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(shm, 64)
            yield from shm.barrier()
            t0 = mpi.now
            yield from win.touch(5000)
            return mpi.now - t0

        rets = returns_of(prog, nodes=1, cores=1, nprocs=1)
        # testing machine: 10 GB/s over 2 streams -> 5 GB/s per stream.
        assert rets[0] == pytest.approx(5000 / 5.0e9)

    def test_flag_store(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            win = yield from mpi.win_allocate_shared(shm, 8)
            if shm.rank == 0:
                win.flag_write("epoch", 7)
                win.flag_add("count", 3)
            yield from shm.barrier()
            return (win.flag_read("epoch"), win.flag_read("count"),
                    win.flag_read("missing"))

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == (7, 3, 0) for r in rets)
