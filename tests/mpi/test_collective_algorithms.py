"""Direct tests of individual collective algorithms.

The dispatcher picks algorithms by size; here each algorithm is invoked
explicitly (via tuned thresholds) so every code path is exercised and
cross-checked against the same reference result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import testing_machine as make_testing_spec
from repro.mpi.collectives.allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from repro.mpi.collectives.bcast import (
    bcast_binomial,
    bcast_pipeline,
    bcast_scatter_allgather,
)
from repro.mpi.collectives.gather import (
    gather_binomial,
    gather_linear,
    scatter_binomial,
    scatter_linear,
)
from repro.mpi.collectives.reduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    combine,
    reduce_binomial,
)
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes
from tests.helpers import returns_of

TAG = 2**28 + 5


def run_algo(algo_prog, nodes=1, cores=4, nprocs=None):
    return returns_of(algo_prog, nodes=nodes, cores=cores, nprocs=nprocs)


class TestAllgatherAlgorithms:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_recursive_doubling(self, size):
        def prog(mpi):
            result = yield from allgather_recursive_doubling(
                mpi.world, np.array([float(mpi.world.rank)]), TAG
            )
            return [float(np.asarray(b)[0]) for b in result.as_list(size)]

        rets = run_algo(prog, cores=size)
        assert all(r == [float(i) for i in range(size)] for r in rets)

    def test_recursive_doubling_rejects_non_pof2(self):
        def prog(mpi):
            try:
                yield from allgather_recursive_doubling(
                    mpi.world, Bytes(8), TAG
                )
            except ValueError:
                yield from mpi.world.barrier()
                return "rejected"

        rets = run_algo(prog, cores=3)
        assert all(r == "rejected" for r in rets)

    @pytest.mark.parametrize("size", [2, 3, 5, 7, 8])
    def test_bruck_any_size(self, size):
        def prog(mpi):
            result = yield from allgather_bruck(
                mpi.world, np.array([float(mpi.world.rank * 3)]), TAG
            )
            return [float(np.asarray(b)[0]) for b in result.as_list(size)]

        rets = run_algo(prog, cores=size)
        assert all(r == [float(i * 3) for i in range(size)] for r in rets)

    @pytest.mark.parametrize("size", [2, 3, 6])
    def test_ring(self, size):
        def prog(mpi):
            result = yield from allgather_ring(
                mpi.world, np.array([float(mpi.world.rank + 1)]), TAG
            )
            return [float(np.asarray(b)[0]) for b in result.as_list(size)]

        rets = run_algo(prog, cores=size)
        assert all(r == [float(i + 1) for i in range(size)] for r in rets)

    def test_algorithms_agree_on_timing_ordering(self):
        # For tiny messages: log-round algorithms beat the linear ring.
        def timed(algo):
            def prog(mpi):
                yield from mpi.world.barrier()
                t0 = mpi.now
                yield from algo(mpi.world, Bytes(8), TAG)
                return mpi.now - t0

            return max(run_algo(prog, cores=8))

        t_rd = timed(allgather_recursive_doubling)
        t_ring = timed(allgather_ring)
        assert t_rd < t_ring


class TestBcastAlgorithms:
    @pytest.mark.parametrize("size,root", [(4, 0), (5, 2), (8, 7)])
    def test_binomial_roots(self, size, root):
        def prog(mpi):
            comm = mpi.world
            payload = (
                np.arange(4.0) * (root + 1) if comm.rank == root else None
            )
            out = yield from bcast_binomial(comm, payload, root, TAG)
            return list(np.asarray(out))

        rets = run_algo(prog, cores=size)
        assert all(r == [0.0, root + 1, 2 * (root + 1), 3 * (root + 1)]
                   for r in rets)

    @pytest.mark.parametrize("size", [4, 6, 8])
    def test_scatter_allgather(self, size):
        def prog(mpi):
            comm = mpi.world
            n = 256
            payload = np.arange(n, dtype=np.float64) if comm.rank == 0 else None
            out = yield from bcast_scatter_allgather(comm, payload, 0, TAG)
            return bool(
                np.allclose(np.asarray(out).reshape(-1), np.arange(n))
            )

        assert all(run_algo(prog, cores=size))

    def test_pipeline_chain(self):
        def prog(mpi):
            comm = mpi.world
            n = 512
            payload = (
                np.arange(n, dtype=np.float64) if comm.rank == 0 else None
            )
            out = yield from bcast_pipeline(
                comm, payload, 0, TAG, chunk_bytes=512
            )
            return bool(
                np.allclose(np.asarray(out).reshape(-1), np.arange(n))
            )

        assert all(run_algo(prog, cores=5))

    def test_scatter_allgather_cheaper_for_large_internode(self):
        # van de Geijn wins on the network: ~2n bytes per rank instead
        # of n*log(p) on the critical path.  Run 8 nodes x 1 rank.
        def timed(algo, nbytes):
            def prog(mpi):
                comm = mpi.world
                payload = Bytes(nbytes)
                yield from comm.barrier()
                t0 = mpi.now
                yield from algo(comm, payload, 0, TAG)
                return mpi.now - t0

            return max(run_algo(prog, nodes=8, cores=1, nprocs=8))

        big = 1_000_000
        assert timed(bcast_scatter_allgather, big) < timed(
            bcast_binomial, big
        )


class TestGatherScatterAlgorithms:
    @pytest.mark.parametrize("algo", [gather_binomial, gather_linear],
                             ids=["binomial", "linear"])
    def test_gather_both_algorithms(self, algo):
        def prog(mpi):
            comm = mpi.world
            out = yield from algo(
                comm, np.array([float(comm.rank)]), 1, TAG
            )
            if out is None:
                return None
            return [float(np.asarray(b)[0]) for b in out.as_list(comm.size)]

        rets = run_algo(prog, cores=5)
        assert rets[1] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert all(r is None for i, r in enumerate(rets) if i != 1)

    @pytest.mark.parametrize("algo", [scatter_binomial, scatter_linear],
                             ids=["binomial", "linear"])
    def test_scatter_both_algorithms(self, algo):
        def prog(mpi):
            comm = mpi.world
            payloads = None
            if comm.rank == 2:
                payloads = [np.array([float(r * 7)]) for r in range(comm.size)]
            mine = yield from algo(comm, payloads, 2, TAG)
            return float(np.asarray(mine)[0])

        rets = run_algo(prog, cores=5)
        assert rets == [0.0, 7.0, 14.0, 21.0, 28.0]

    def test_scatter_requires_payload_list(self):
        # Validation fires at the root before any communication, so a
        # single-rank job observes it without deadlocking peers.
        def prog(mpi):
            comm = mpi.world
            try:
                yield from scatter_binomial(comm, None, 0, TAG)
            except ValueError:
                return "rejected"
            return "accepted"

        rets = run_algo(prog, cores=1, nprocs=1)
        assert rets == ["rejected"]


class TestReduceAlgorithms:
    def test_combine_ops(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        assert list(combine(a, b, ReduceOp.SUM)) == [4.0, 7.0]
        assert list(combine(a, b, ReduceOp.PROD)) == [3.0, 10.0]
        assert list(combine(a, b, ReduceOp.MIN)) == [1.0, 2.0]
        assert list(combine(a, b, ReduceOp.MAX)) == [3.0, 5.0]

    def test_combine_bytes_preserves_size(self):
        assert combine(Bytes(8), Bytes(8), ReduceOp.SUM) == Bytes(8)
        with pytest.raises(ValueError):
            combine(Bytes(8), Bytes(16), ReduceOp.SUM)

    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_allreduce_rd_any_size(self, size):
        def prog(mpi):
            out = yield from allreduce_recursive_doubling(
                mpi.world, np.array([1.0, float(mpi.world.rank)]),
                ReduceOp.SUM, TAG,
            )
            return list(np.asarray(out))

        rets = run_algo(prog, cores=size)
        expected = [float(size), float(sum(range(size)))]
        assert all(r == expected for r in rets)

    @pytest.mark.parametrize("size", [4, 8])
    def test_rabenseifner_pof2(self, size):
        def prog(mpi):
            vec = np.arange(16.0) + mpi.world.rank
            out = yield from allreduce_rabenseifner(
                mpi.world, vec, ReduceOp.SUM, TAG
            )
            return list(np.asarray(out).reshape(-1))

        rets = run_algo(prog, cores=size)
        expected = list(
            sum(np.arange(16.0) + r for r in range(size))
        )
        assert all(r == expected for r in rets)

    def test_rabenseifner_falls_back_non_pof2(self):
        def prog(mpi):
            out = yield from allreduce_rabenseifner(
                mpi.world, np.array([float(mpi.world.rank)]),
                ReduceOp.SUM, TAG,
            )
            return float(np.asarray(out)[0])

        rets = run_algo(prog, cores=3)
        assert all(r == 3.0 for r in rets)

    @pytest.mark.parametrize("root", [0, 1, 4])
    def test_reduce_binomial_roots(self, root):
        def prog(mpi):
            out = yield from reduce_binomial(
                mpi.world, np.array([2.0]), ReduceOp.SUM, root, TAG
            )
            return None if out is None else float(np.asarray(out)[0])

        rets = run_algo(prog, cores=5)
        assert rets[root] == 10.0


class TestRingAllreduce:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    def test_matches_reference_any_size(self, size):
        from repro.mpi.collectives.reduce import allreduce_ring

        def prog(mpi):
            vec = np.arange(12.0) * (mpi.world.rank + 1)
            out = yield from allreduce_ring(
                mpi.world, vec, ReduceOp.SUM, TAG
            )
            return list(np.asarray(out).reshape(-1))

        rets = run_algo(prog, cores=size)
        expected = list(np.arange(12.0) * sum(range(1, size + 1)))
        assert all(r == expected for r in rets)

    def test_ring_beats_recursive_doubling_for_large_messages(self):
        from repro.mpi.collectives.reduce import (
            allreduce_recursive_doubling,
            allreduce_ring,
        )

        def timed(algo):
            def prog(mpi):
                yield from mpi.world.barrier()
                t0 = mpi.now
                yield from algo(
                    mpi.world, Bytes(4_000_000), ReduceOp.SUM, TAG
                )
                return mpi.now - t0

            return max(run_algo(prog, nodes=6, cores=1, nprocs=6))

        # 4 MB over 6 single-rank nodes: ring moves 2n/p per step vs
        # RD's full-vector exchanges.
        assert timed(allreduce_ring) < timed(allreduce_recursive_doubling)

    def test_symbolic_size_preserved(self):
        from repro.mpi.collectives.reduce import allreduce_ring

        def prog(mpi):
            out = yield from allreduce_ring(
                mpi.world, Bytes(1001), ReduceOp.SUM, TAG
            )
            return out.nbytes

        rets = run_algo(prog, cores=3)
        assert all(r == 1001 for r in rets)
