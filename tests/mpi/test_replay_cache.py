"""Unit and property tests for the collective replay cache keying.

The replay key must be sensitive to everything that can change a
dispatch's simulated cost — machine fingerprint, transport, socket
mode, payload *sizes*, entry-time offsets, arrival permutation — and
insensitive to pure execution-mode knobs (payload storage mode) that
the equivalence suites prove cost-neutral.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen, hazel_hen_flat
from repro.machine.presets import testing_machine as _testing
from repro.mpi import run_program
from repro.mpi.collectives import replay as replaylib
from repro.mpi.collectives.replay import (
    job_prefix,
    payload_signature,
    replay_key,
    sync_signature,
)
from repro.mpi.datatypes import Bytes
from repro.mpi.runtime import MPIJob


def _noop(mpi):
    return
    yield  # pragma: no cover


def _job(spec=None, *, placement=None, **kwargs):
    spec = spec or _testing(num_nodes=2, cores=4)
    return MPIJob(spec, _noop, placement=placement or Placement.block(2, 4),
                  replay=False, **kwargs)


class TestJobPrefix:
    def test_stable_for_identical_jobs(self):
        assert job_prefix(_job()) == job_prefix(_job())

    def test_sensitive_to_machine_fingerprint(self):
        a = job_prefix(_job(_testing(num_nodes=2, cores=4)))
        b = job_prefix(_job(
            _testing(num_nodes=2, cores=4, bandwidth=9e8)
        ))
        assert a != b

    def test_sensitive_to_transport(self):
        from dataclasses import replace

        spec = hazel_hen(2)
        other = replace(spec, node=replace(spec.node, transport="pip_direct"))
        pl = Placement.block(2, 4)
        assert (job_prefix(_job(spec, placement=pl))
                != job_prefix(_job(other, placement=pl)))

    def test_sensitive_to_socket_mode(self):
        spec = hazel_hen(2)  # 2-socket nodes: socket_mode matters
        a = _job(spec, placement=Placement.block(2, 8))
        b = _job(
            spec,
            placement=Placement.block(2, 8).with_socket_mode("scatter"),
        )
        assert job_prefix(a) != job_prefix(b)

    def test_sensitive_to_topology_not_just_size(self):
        spec = hazel_hen_flat(2)
        a = _job(spec, placement=Placement.irregular([5, 3]))
        b = _job(spec, placement=Placement.irregular([4, 4]))
        assert job_prefix(a) != job_prefix(b)

    def test_insensitive_to_payload_mode(self):
        prefixes = {
            job_prefix(_job(payload=mode))
            for mode in ("data", "model", "cost-only")
        }
        assert len(prefixes) == 1

    def test_insensitive_to_seed(self):
        assert job_prefix(_job(seed=1)) == job_prefix(_job(seed=2))


class TestReplayKey:
    PREFIX = ("p",)
    SIGS = (("b", 64),) * 4
    ZERO = (0,) * 4
    ORDER = (0, 1, 2, 3)

    def _key(self, **kw):
        return replay_key(
            kw.get("prefix", self.PREFIX), kw.get("op", "allgather"),
            kw.get("sigs", self.SIGS), kw.get("offsets", self.ZERO),
            kw.get("order", self.ORDER),
        )

    def test_sensitive_to_dtype_signature(self):
        assert self._key() != self._key(sigs=(("b", 128),) * 4)
        assert self._key() != self._key(
            sigs=(("b", 128),) + (("b", 64),) * 3
        )

    def test_sensitive_to_entry_offsets(self):
        assert self._key() != self._key(offsets=(0, 0, 0, 1))

    def test_sensitive_to_arrival_order(self):
        assert self._key() != self._key(order=(3, 2, 1, 0))

    def test_sensitive_to_op(self):
        assert self._key() != self._key(op="bcast")


class TestPayloadSignature:
    def test_size_only_payloads_are_keyable(self):
        assert payload_signature(None) == ("none",)
        assert payload_signature(Bytes(64)) == ("b", 64)
        assert payload_signature([Bytes(8), None, Bytes(16)]) == \
            ("lb", (8, -1, 16))

    def test_data_payloads_veto(self):
        assert payload_signature(np.zeros(4)) is None
        assert payload_signature([Bytes(8), np.zeros(2)]) is None

    def test_sync_policy_signatures(self):
        from repro.core import BarrierSync, FlagSync

        assert sync_signature(BarrierSync()) is not None
        assert sync_signature(FlagSync()) is not None
        assert sync_signature(BarrierSync()) != sync_signature(FlagSync())

        class Custom(BarrierSync):
            pass

        assert sync_signature(Custom()) is None


def _bench(mpi, nbytes=256, reps=4):
    comm = mpi.world
    payload = Bytes(nbytes)
    yield from comm.allgather(payload)  # warm-first: runs live
    for _ in range(reps):
        yield from comm.align()
        yield from comm.allgather(payload)


class TestSessionKeying:
    """End-to-end: runs that must (or must not) share cache entries."""

    def setup_method(self):
        replaylib.clear_cache()

    def _run(self, spec=None, *, program_kwargs=None, **kwargs):
        return run_program(
            spec or _testing(num_nodes=2, cores=4), None, _bench,
            placement=kwargs.pop("placement", Placement.block(2, 4)),
            payload=kwargs.pop("payload", "cost-only"),
            replay=kwargs.pop("replay", "loop"),
            program_kwargs=program_kwargs or {},
            **kwargs,
        )

    def test_identical_jobs_share_entries(self):
        first = self._run()
        entries = replaylib.cache_stats()["entries"]
        second = self._run()
        # Nothing new recorded: the second job replays from the first
        # job's entries (warm-first still runs one dispatch live).
        assert replaylib.cache_stats()["entries"] == entries
        assert second.replay_hits == 4
        assert first.elapsed == second.elapsed

    def test_machine_change_misses(self):
        self._run()
        entries = replaylib.cache_stats()["entries"]
        self._run(_testing(num_nodes=2, cores=4, bandwidth=9e8))
        assert replaylib.cache_stats()["entries"] > entries

    def test_payload_size_change_misses(self):
        self._run()
        entries = replaylib.cache_stats()["entries"]
        self._run(program_kwargs={"nbytes": 512})
        assert replaylib.cache_stats()["entries"] > entries

    def test_payload_mode_shares_entries(self):
        self._run(payload="cost-only")
        entries = replaylib.cache_stats()["entries"]
        result = self._run(payload="model")
        assert replaylib.cache_stats()["entries"] == entries
        assert result.replay_hits == 4

    def test_data_mode_never_replays(self):
        result = self._run(payload="data", replay=True)
        assert result.replay_hits == result.replay_misses == 0
