"""Tests for Cartesian topologies and the profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import Bytes
from repro.mpi.cart import CartComm, cart_create, dims_create
from repro.mpi.constants import PROC_NULL
from repro.mpi.errors import MPIError
from repro.mpi.profiler import CommProfile, OpStats, aggregate_profiles
from tests.helpers import returns_of, run


class TestDimsCreate:
    def test_balanced_square(self):
        assert dims_create(16, 2) == [4, 4]

    def test_rectangles(self):
        assert sorted(dims_create(12, 2)) == [3, 4]
        assert dims_create(24, 3) in ([4, 3, 2], [3, 4, 2], [4, 2, 3])
        import math

        assert math.prod(dims_create(24, 3)) == 24

    def test_one_dim(self):
        assert dims_create(7, 1) == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)


class TestCartComm:
    def test_coords_roundtrip(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2, 3))
            yield from mpi.world.barrier()
            c = cart.coords()
            return (c, cart.rank_at(c))

        rets = returns_of(prog, nodes=1, cores=6, nprocs=6)
        for rank, (coords, back) in enumerate(rets):
            assert back == rank
            assert coords == (rank // 3, rank % 3)

    def test_size_mismatch_rejected(self):
        def prog(mpi):
            try:
                cart_create(mpi.world, (2, 2))
            except MPIError:
                yield from mpi.world.barrier()
                return "rejected"
            return "ok"

        rets = returns_of(prog, nodes=1, cores=6, nprocs=6)
        assert all(r == "rejected" for r in rets)

    def test_shift_open_boundary(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (4,), periods=(False,))
            yield from mpi.world.barrier()
            return cart.shift(0, 1)

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == (PROC_NULL, 1)
        assert rets[3] == (2, PROC_NULL)

    def test_shift_periodic(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (4,), periods=(True,))
            yield from mpi.world.barrier()
            return cart.shift(0, 1)

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == (3, 1)
        assert rets[3] == (2, 0)

    def test_row_col_subcomms(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2, 3))
            row = yield from cart.sub(1)
            col = yield from cart.sub(0)
            # Row comm ranks share their first coordinate.
            mine = np.array([float(cart.rank)])
            row_ranks = yield from row.allgather(mine)
            col_ranks = yield from col.allgather(mine)
            return (
                [float(np.asarray(b)[0]) for b in row_ranks],
                [float(np.asarray(b)[0]) for b in col_ranks],
            )

        rets = returns_of(prog, nodes=1, cores=6, nprocs=6)
        assert rets[0] == ([0.0, 1.0, 2.0], [0.0, 3.0])
        assert rets[4] == ([3.0, 4.0, 5.0], [1.0, 4.0])

    def test_sub_cached(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2, 2))
            a = yield from cart.sub(0)
            b = yield from cart.sub(0)
            return a is b

        assert all(returns_of(prog, nodes=1, cores=4, nprocs=4))

    def test_halo_exchange_over_cart(self):
        # Neighbour sendrecv along a periodic ring using shift().
        def prog(mpi):
            cart = cart_create(mpi.world, (4,), periods=(True,))
            src, dst = cart.shift(0, 1)
            got = yield from cart.comm.sendrecv(
                np.array([float(cart.rank)]), dest=dst, source=src,
                sendtag=1, recvtag=1,
            )
            return float(np.asarray(got)[0])

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets == [3.0, 0.0, 1.0, 2.0]


class TestProfiler:
    def test_ops_recorded(self):
        def prog(mpi):
            comm = mpi.world
            yield from comm.barrier()
            yield from comm.allgather(Bytes(64))
            yield from comm.allgather(Bytes(64))
            yield from comm.bcast(Bytes(32), root=0)
            return None

        result = run(prog, nodes=2, cores=2, payload_mode="model")
        summary = result.comm_summary()
        assert summary["allgather"]["calls"] == 2 * 4
        assert summary["barrier"]["calls"] == 4
        assert summary["bcast"]["calls"] == 4
        assert summary["allgather"]["time"] > 0

    def test_aggregate_uses_max_time(self):
        a, b = CommProfile(), CommProfile()
        a.record("bcast", 10, 1.0)
        b.record("bcast", 10, 3.0)
        merged = aggregate_profiles([a, b])
        assert merged["bcast"].calls == 2
        assert merged["bcast"].bytes == 20
        assert merged["bcast"].time == 3.0

    def test_disabled_profile_records_nothing(self):
        p = CommProfile(enabled=False)
        p.record("x", 1, 1.0)
        assert p.total_calls == 0

    def test_opstats_merge(self):
        s = OpStats(1, 10.0, 2.0).merged(OpStats(2, 5.0, 1.0))
        assert (s.calls, s.bytes, s.time) == (3, 15.0, 2.0)
