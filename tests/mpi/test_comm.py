"""Integration tests for communicator management."""

from __future__ import annotations

import numpy as np

from repro.machine import Placement
from repro.mpi import Bytes, UNDEFINED
from tests.helpers import returns_of


class TestSplit:
    def test_split_by_parity(self):
        def prog(mpi):
            comm = mpi.world
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size, sub.world_rank_of(0))

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        # evens -> {0,2}, odds -> {1,3}
        assert rets[0] == (0, 2, 0)
        assert rets[2] == (1, 2, 0)
        assert rets[1] == (0, 2, 1)
        assert rets[3] == (1, 2, 1)

    def test_split_key_reorders(self):
        def prog(mpi):
            comm = mpi.world
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets == [3, 2, 1, 0]

    def test_undefined_color_yields_none(self):
        def prog(mpi):
            comm = mpi.world
            color = 0 if comm.rank == 0 else UNDEFINED
            sub = yield from comm.split(color=color)
            return sub is None

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets == [False, True, True, True]

    def test_subcomm_messaging_isolated_from_parent(self):
        def prog(mpi):
            comm = mpi.world
            sub = yield from comm.split(color=comm.rank // 2, key=comm.rank)
            # Same (src=0, dst=1, tag=0) coordinates on parent and sub:
            # matching must be per-communicator.
            if comm.rank == 0:
                yield from comm.send(Bytes(11), 1, tag=0)
                yield from sub.send(Bytes(22), 1, tag=0)
                return None
            if comm.rank == 1:
                from_sub = yield from sub.recv(source=0, tag=0)
                from_world = yield from comm.recv(source=0, tag=0)
                return (from_world.nbytes, from_sub.nbytes)
            return None

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[1] == (11, 22)


class TestSplitTypeShared:
    def test_groups_by_node(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            return (mpi.node, shm.size, shm.rank)

        rets = returns_of(prog, nodes=2, cores=3, nprocs=6)
        assert rets[0] == (0, 3, 0)
        assert rets[2] == (0, 3, 2)
        assert rets[3] == (1, 3, 0)
        assert rets[5] == (1, 3, 2)

    def test_round_robin_placement(self):
        def prog(mpi):
            shm = yield from mpi.world.split_type_shared()
            return sorted(
                shm.world_rank_of(r) for r in range(shm.size)
            )

        placement = Placement.round_robin(2, 2)
        rets = returns_of(prog, nodes=2, cores=2, placement=placement)
        assert rets[0] == [0, 2]  # node 0 hosts world ranks 0 and 2
        assert rets[1] == [1, 3]


class TestDup:
    def test_dup_has_fresh_matching_namespace(self):
        def prog(mpi):
            comm = mpi.world
            dup = yield from comm.dup()
            assert dup.id != comm.id
            if comm.rank == 0:
                yield from dup.send(Bytes(5), 1, tag=1)
                yield from comm.send(Bytes(9), 1, tag=1)
                return None
            a = yield from comm.recv(source=0, tag=1)
            b = yield from dup.recv(source=0, tag=1)
            return (a.nbytes, b.nbytes)

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == (9, 5)

    def test_dup_preserves_ranks(self):
        def prog(mpi):
            dup = yield from mpi.world.dup()
            return (dup.rank, dup.size)

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert rets == [(0, 3), (1, 3), (2, 3)]


class TestQueries:
    def test_node_of(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return [mpi.world.node_of(r) for r in range(mpi.world.size)]

        rets = returns_of(prog, nodes=2, cores=2, nprocs=4)
        assert rets[0] == [0, 0, 1, 1]

    def test_repr_mentions_rank(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return repr(mpi.world)

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert "rank=0/2" in rets[0]
