"""Non-blocking collective requests and the overlap progress model.

Covers the :class:`repro.mpi.nonblocking.CollRequest` machinery: the
request-completion helpers (``test``/``testall``/``waitany``/
``waitsome``), the new ``ireduce``/``iallgatherv`` immediate
collectives, actual communication/computation overlap in virtual time,
the hybrid ``HybridContext.i*`` variants, and the tracer-context span
bookkeeping for concurrent collectives (including the Chrome-trace
track lifting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridContext
from repro.mpi import CollRequest, MPIError
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes
from repro.trace import to_chrome_trace
from tests.helpers import run


class TestRequestHelpers:
    def test_test_and_testall(self):
        def program(mpi):
            comm = mpi.world
            reqs = [comm.ibarrier(), comm.ibarrier()]
            assert isinstance(reqs[0], CollRequest)
            states = [comm.test(r) for r in reqs]
            assert comm.testall([]) is True  # vacuous
            yield from comm.waitall(reqs)
            assert comm.testall(reqs) is True
            assert all(comm.test(r) for r in reqs)
            return states

        res = run(program, nodes=1, cores=4)
        # Before any wait the requests had not completed.
        assert all(st == [False, False] for st in res.returns)

    def test_waitany_returns_first_complete(self):
        def program(mpi):
            comm = mpi.world
            slow = comm.iallgather(Bytes(512 * 1024))
            fast = comm.ibarrier()
            idx, _value = yield from comm.waitany([slow, fast])
            # The barrier is cheaper and completes first.
            yield from comm.waitall([slow, fast])
            return idx

        res = run(program, nodes=2, cores=2)
        assert all(idx == 1 for idx in res.returns)

    def test_waitsome_returns_all_complete(self):
        def program(mpi):
            comm = mpi.world
            reqs = [comm.ibarrier(), comm.ibarrier(), comm.ibarrier()]
            indices, values = yield from comm.waitsome(reqs)
            yield from comm.waitall(reqs)
            return (indices, len(values))

        res = run(program, nodes=1, cores=4)
        for indices, nvalues in res.returns:
            assert indices and len(indices) == nvalues
            assert indices == sorted(indices)

    def test_empty_lists_raise(self):
        def program(mpi):
            comm = mpi.world
            with pytest.raises(MPIError):
                yield from comm.waitany([])
            with pytest.raises(MPIError):
                yield from comm.waitsome([])
            yield from comm.barrier()
            return True

        assert all(run(program, nodes=1, cores=2).returns)


class TestNewImmediates:
    def test_ireduce_matches_reduce(self):
        def program(mpi):
            comm = mpi.world
            data = np.full(4, float(comm.rank + 1))
            blocking = yield from comm.reduce(data.copy(), root=1)
            req = comm.ireduce(data.copy(), op=ReduceOp.SUM, root=1)
            immediate = yield from req.wait()
            if comm.rank == 1:
                np.testing.assert_allclose(immediate, blocking)
                return float(np.sum(immediate))
            return None

        res = run(program, nodes=2, cores=2)
        expected = 4 * (1 + 2 + 3 + 4)
        assert res.returns[1] == pytest.approx(expected)

    def test_iallgatherv_matches_allgatherv(self):
        def program(mpi):
            comm = mpi.world
            mine = np.full(comm.rank + 1, float(comm.rank))
            blocking = yield from comm.allgatherv(mine.copy())
            req = comm.iallgatherv(mine.copy())
            immediate = yield from req.wait()
            for a, b in zip(immediate, blocking):
                np.testing.assert_allclose(a, b)
            return [len(part) for part in immediate]

        res = run(program, nodes=2, cores=2)
        assert all(lens == [1, 2, 3, 4] for lens in res.returns)


class TestOverlapProgress:
    def test_collective_progresses_during_compute(self):
        """i-op + compute + wait is cheaper than op + compute."""
        nbytes = 256 * 1024

        def blocking(mpi):
            comm = mpi.world
            yield from comm.allgather(Bytes(nbytes))
            yield mpi.compute(20e-6)
            return mpi.now

        def overlapped(mpi):
            comm = mpi.world
            req = comm.iallgather(Bytes(nbytes))
            yield mpi.compute(20e-6)
            yield from req.wait()
            return mpi.now

        base = run(blocking, nodes=2, cores=4, payload="cost-only")
        over = run(overlapped, nodes=2, cores=4, payload="cost-only")
        assert over.elapsed < base.elapsed

    def test_hybrid_immediate_overlaps_bridge_exchange(self):
        nbytes = 64 * 1024

        def blocking(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(nbytes)
            yield from ctx.allgather(buf)
            yield mpi.compute(20e-6)
            return mpi.now

        def overlapped(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(nbytes)
            req = ctx.iallgather(buf)
            yield mpi.compute(20e-6)
            yield from req.wait()
            return mpi.now

        base = run(blocking, nodes=4, cores=4, payload="cost-only")
        over = run(overlapped, nodes=4, cores=4, payload="cost-only")
        assert over.elapsed < base.elapsed

    def test_hybrid_immediate_data_correct(self):
        nbytes = 8 * 8

        def program(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(nbytes)
            view = buf.local_view(np.float64)
            if view is not None:
                view[:] = float(mpi.world.rank)
            req = ctx.iallgather(buf)
            yield from req.wait()
            gathered = buf.node_view(np.float64)
            return None if gathered is None else float(gathered.sum())

        res = run(program, nodes=2, cores=2)
        expected = 8 * (0 + 1 + 2 + 3)
        assert all(r == pytest.approx(expected) for r in res.returns)


class TestSpanContexts:
    def test_wait_later_spans_nest_correctly(self):
        """A request completed by a later wait keeps its own span stack:
        spans opened by the background collective never become parents
        of the rank's own subsequent spans (the satellite-2 fix)."""
        def program(mpi):
            comm = mpi.world
            req = comm.iallgather(Bytes(64 * 1024))
            yield from comm.barrier()  # runs while the iallgather is open
            yield from req.wait()
            return True

        res = run(program, nodes=2, cores=2, payload="cost-only",
                  trace="dispatch")
        spans = [r for r in res.trace if r.get("dur") is not None]
        by_sid = {r["sid"]: r for r in spans}
        for rec in spans:
            parent = rec.get("parent")
            if parent is None:
                continue
            # A span's parent must temporally contain it.
            p = by_sid[parent]
            assert p["t"] <= rec["t"]
            assert p["t"] + p["dur"] >= rec["t"] + rec["dur"]
        # The barrier dispatch must be top-level, not a child of the
        # concurrently-open iallgather.
        barriers = [r for r in spans if r.get("op") == "barrier"]
        assert barriers and all(r["parent"] is None for r in barriers)

    def test_dispatch_span_covers_post_to_completion(self):
        def program(mpi):
            comm = mpi.world
            t_post = mpi.now
            req = comm.iallgather(Bytes(64 * 1024))
            yield mpi.compute(30e-6)
            yield from req.wait()
            return (t_post, mpi.now)

        res = run(program, nodes=2, cores=2, payload="cost-only",
                  trace="dispatch")
        # The dispatch span keeps the blocking op name ("allgather") so
        # immediate-wait span streams stay bit-identical to blocking.
        tops = [r for r in res.trace
                if r.get("op") == "allgather" and r["parent"] is None]
        assert len(tops) == 4
        for rec in tops:
            t_post, t_done = res.returns[rec["rank"]]
            # Opens at post (+ the dispatch-entry overhead, same as a
            # blocking call) and stays open until completion — well past
            # the 30 us compute window, not closed at post time.
            assert t_post <= rec["t"] < t_post + 5e-6
            assert rec["t"] + rec["dur"] > t_post + 30e-6
            assert rec["t"] + rec["dur"] <= t_done

    def test_chrome_trace_lifts_concurrent_spans(self):
        def program(mpi):
            comm = mpi.world
            req = comm.iallgather(Bytes(256 * 1024))
            yield from comm.barrier()
            yield from req.wait()
            return True

        res = run(program, nodes=2, cores=2, payload="cost-only",
                  trace="dispatch")
        doc = to_chrome_trace(res.trace)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M"]
        assert any("overlap" in n for n in names)

    def test_chrome_trace_unchanged_without_concurrency(self):
        def program(mpi):
            yield from mpi.world.allgather(Bytes(1024))
            return True

        res = run(program, nodes=2, cores=2, payload="cost-only",
                  trace="dispatch")
        doc = to_chrome_trace(res.trace)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M"]
        assert not any("overlap" in n for n in names)


class TestComputeSpans:
    def test_compute_modifier_records_compute_spans(self):
        def program(mpi):
            yield mpi.compute_flops(1e6, kind="blas1")
            yield from mpi.world.barrier()
            return True

        res = run(program, nodes=1, cores=2, payload="cost-only",
                  trace="dispatch+compute")
        kinds = {r.get("kind") for r in res.trace}
        assert "compute" in kinds
        compute = [r for r in res.trace if r.get("kind") == "compute"]
        assert all(r["dur"] > 0 for r in compute)
        assert all(r["op"] == "blas1" for r in compute)

    def test_default_trace_has_no_compute_spans(self):
        def program(mpi):
            yield mpi.compute_flops(1e6, kind="blas1")
            yield from mpi.world.barrier()
            return True

        res = run(program, nodes=1, cores=2, payload="cost-only",
                  trace="dispatch")
        assert all(r.get("kind") != "compute" for r in res.trace)

    def test_bad_trace_modifier_rejected(self):
        def program(mpi):
            yield from mpi.world.barrier()
            return True

        with pytest.raises(ValueError):
            run(program, nodes=1, cores=2, trace="dispatch+bogus")
