"""Dispatch edge cases: size-1 comms, empty payloads, exotic shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import Bytes
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of


class TestSingletonComms:
    """Every collective must degenerate gracefully on a 1-rank comm."""

    def test_all_ops_on_singleton(self):
        def prog(mpi):
            comm = mpi.world
            x = np.array([3.0])
            out = []
            out.append((yield from comm.bcast(x.copy(), root=0)))
            out.append((yield from comm.allgather(x)))
            out.append((yield from comm.allgatherv(x)))
            out.append((yield from comm.allreduce(x)))
            out.append((yield from comm.reduce(x, ReduceOp.SUM, 0)))
            out.append((yield from comm.gather(x, 0)))
            out.append((yield from comm.scatter([x], 0)))
            out.append((yield from comm.scan(x)))
            out.append((yield from comm.exscan(x)))
            out.append((yield from comm.reduce_scatter(x)))
            out.append((yield from comm.alltoall([x])))
            yield from comm.barrier()
            return out

        (result,) = returns_of(prog, nodes=1, cores=1, nprocs=1)
        bcast, ag, agv, ar, red, gat, scat, scan, exs, rs, a2a = result
        assert float(np.asarray(bcast)[0]) == 3.0
        assert len(ag) == 1 and len(agv) == 1
        assert float(np.asarray(ar)[0]) == 3.0
        assert float(np.asarray(red)[0]) == 3.0
        assert len(gat) == 1
        assert float(np.asarray(scat)[0]) == 3.0
        assert float(np.asarray(scan)[0]) == 3.0
        assert exs is None
        assert float(np.asarray(rs)[0]) == 3.0
        assert len(a2a) == 1

    def test_singleton_collectives_cost_only_overhead(self):
        def prog(mpi):
            comm = mpi.world
            t0 = mpi.now
            yield from comm.allgather(Bytes(1_000_000))
            return mpi.now - t0

        rets = returns_of(prog, nodes=1, cores=1, nprocs=1,
                          payload_mode="model")
        assert rets[0] < 1e-5  # just software overhead, no transfer


class TestZeroBytePayloads:
    def test_zero_byte_allgather(self):
        def prog(mpi):
            blocks = yield from mpi.world.allgather(Bytes(0))
            return [b.nbytes for b in blocks]

        rets = returns_of(prog, nodes=2, cores=2, payload_mode="model")
        assert all(r == [0, 0, 0, 0] for r in rets)

    def test_zero_byte_bcast(self):
        def prog(mpi):
            out = yield from mpi.world.bcast(Bytes(0), root=0)
            return out.nbytes

        rets = returns_of(prog, nodes=2, cores=2, payload_mode="model")
        assert all(r == 0 for r in rets)

    def test_empty_array_allgatherv(self):
        def prog(mpi):
            comm = mpi.world
            mine = (
                np.zeros(0) if comm.rank == 0 else np.full(2, float(comm.rank))
            )
            blocks = yield from comm.allgatherv(mine)
            return [np.asarray(b).size for b in blocks]

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert all(r == [0, 2, 2] for r in rets)


class TestLargeConfigurations:
    def test_prime_comm_size(self):
        def prog(mpi):
            comm = mpi.world
            blocks = yield from comm.allgather(np.array([float(comm.rank)]))
            total = yield from comm.allreduce(np.array([1.0]))
            return (len(blocks), float(np.asarray(total)[0]))

        rets = returns_of(prog, nodes=1, cores=7, nprocs=7)
        assert all(r == (7, 7.0) for r in rets)

    def test_wide_node_many_ranks(self):
        def prog(mpi):
            comm = mpi.world
            out = yield from comm.allreduce(np.array([float(comm.rank)]))
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=1, cores=32, nprocs=32)
        assert all(r == float(sum(range(32))) for r in rets)

    def test_many_small_nodes(self):
        def prog(mpi):
            comm = mpi.world
            blocks = yield from comm.allgather(Bytes(8))
            return len(blocks)

        from repro.machine import Placement

        placement = Placement.irregular([2] * 9)
        rets = returns_of(prog, nodes=9, cores=2, placement=placement,
                          payload_mode="model")
        assert all(r == 18 for r in rets)


class TestMixedModes:
    def test_bytes_and_arrays_share_cost_paths(self):
        # The same program in data vs model mode must take identical
        # virtual time (payload mode must never change timing).
        def prog(mpi):
            comm = mpi.world
            payload = mpi.doubles(256, fill=1.0)
            yield from comm.allgather(payload)
            yield from comm.bcast(mpi.doubles(512), root=0)
            yield from comm.barrier()
            return mpi.now

        data = returns_of(prog, nodes=2, cores=3)
        model = returns_of(prog, nodes=2, cores=3, payload_mode="model")
        assert data == model
