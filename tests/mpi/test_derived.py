"""Tests for derived datatypes (layout algebra + pack/unpack + costs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.derived import (
    BYTE,
    DOUBLE,
    INT,
    Contiguous,
    Indexed,
    Vector,
    recv_with_datatype,
    send_with_datatype,
)
from tests.helpers import returns_of


class TestLayoutAlgebra:
    def test_base_types(self):
        assert DOUBLE.size() == 8
        assert INT.size() == 4
        assert BYTE.extent() == 1
        assert DOUBLE.is_contiguous()

    def test_contiguous(self):
        t = Contiguous(5, DOUBLE)
        assert t.count() == 5
        assert t.size() == 40
        assert t.is_contiguous()
        np.testing.assert_array_equal(t.indices(), np.arange(5))

    def test_vector_column_layout(self):
        # Column of a 4x3 row-major matrix: 4 blocks of 1, stride 3.
        t = Vector(4, 1, 3, DOUBLE)
        np.testing.assert_array_equal(t.indices(), [0, 3, 6, 9])
        assert not t.is_contiguous()
        assert t.size() == 32
        assert t.extent() == 10

    def test_vector_degenerate_is_contiguous(self):
        t = Vector(3, 2, 2, DOUBLE)
        assert t.is_contiguous()

    def test_vector_overlap_rejected(self):
        with pytest.raises(ValueError):
            Vector(2, 3, 2, DOUBLE)

    def test_indexed(self):
        t = Indexed([2, 1], [0, 5], DOUBLE)
        np.testing.assert_array_equal(t.indices(), [0, 1, 5])
        assert t.size() == 24

    def test_indexed_validation(self):
        with pytest.raises(ValueError):
            Indexed([1], [0, 1])
        with pytest.raises(ValueError):
            Indexed([-1], [0])

    def test_offset_displaces(self):
        t = Vector(2, 1, 3, DOUBLE).offset(1)
        np.testing.assert_array_equal(t.indices(), [1, 4])

    def test_nested_contiguous_of_vector(self):
        inner = Vector(2, 1, 2, DOUBLE)   # indices [0, 2], extent 3
        t = Contiguous(2, inner)
        np.testing.assert_array_equal(t.indices(), [0, 2, 3, 5])


class TestPackUnpack:
    def test_pack_column(self):
        m = np.arange(12.0).reshape(4, 3)
        col = Vector(4, 1, 3, DOUBLE)
        np.testing.assert_array_equal(
            col.offset(1).pack(m.reshape(-1)), [1, 4, 7, 10]
        )

    def test_unpack_roundtrip(self):
        src = np.arange(12.0)
        t = Indexed([2, 2], [1, 7], DOUBLE)
        packed = t.pack(src)
        dest = np.zeros(12)
        t.unpack(packed, dest)
        np.testing.assert_array_equal(dest[[1, 2, 7, 8]], [1, 2, 7, 8])
        assert dest[0] == 0.0

    def test_packing_time_scales_with_size(self):
        t = Vector(100, 1, 2, DOUBLE)
        assert t.packing_time(1e-9) == pytest.approx(800 * 1e-9)


class TestCommunication:
    def test_send_matrix_column(self):
        def prog(mpi):
            comm = mpi.world
            col = Vector(4, 1, 3, DOUBLE).offset(2)
            if comm.rank == 0:
                m = np.arange(12.0)
                yield from send_with_datatype(comm, m, 1, col, tag=3)
                return None
            dest = np.zeros(12)
            yield from recv_with_datatype(comm, dest, col, source=0, tag=3)
            return [float(x) for x in dest[[2, 5, 8, 11]]]

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [2.0, 5.0, 8.0, 11.0]

    def test_noncontiguous_charged_more_than_contiguous(self):
        def make(datatype):
            def prog(mpi):
                comm = mpi.world
                if comm.rank == 0:
                    t0 = mpi.now
                    yield from send_with_datatype(
                        comm, np.zeros(4096), 1, datatype
                    )
                    return mpi.now - t0
                yield from recv_with_datatype(
                    comm, np.zeros(4096), datatype, source=0
                )
                return None

            return prog

        contiguous = Contiguous(2000, DOUBLE)
        strided = Vector(2000, 1, 2, DOUBLE)
        t_cont = returns_of(make(contiguous), nodes=1, cores=2, nprocs=2)[0]
        t_vec = returns_of(make(strided), nodes=1, cores=2, nprocs=2)[0]
        # Same payload size (16 kB), but the strided send pays packing.
        assert t_vec > t_cont

    def test_model_mode_sizes_only(self):
        def prog(mpi):
            comm = mpi.world
            t = Vector(8, 1, 4, DOUBLE)
            if comm.rank == 0:
                yield from send_with_datatype(comm, None, 1, t)
                return None
            payload = yield from recv_with_datatype(
                comm, None, t, source=0
            )
            return payload.nbytes

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2,
                          payload_mode="model")
        assert rets[1] == 64
