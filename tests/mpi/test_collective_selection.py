"""Tests of the runtime algorithm-selection (decision table) via traces."""

from __future__ import annotations

import pytest

from repro.machine import Placement, testing_machine as make_testing_spec
from repro.mpi import Bytes, run_program
from repro.mpi.collectives.tuning import (
    cray_mpich_tuning,
    generic_tuning,
    openmpi_tuning,
    tuning_for_machine,
)


def traced(prog, *, nodes=1, cores=4, tuning=None, placement=None):
    spec = make_testing_spec(nodes, cores)
    nprocs = None if placement is not None else nodes * cores
    result = run_program(
        spec, nprocs, prog, trace=True, payload_mode="model",
        tuning=tuning, placement=placement,
    )
    return result.trace


def algos_of(trace, op):
    return {t["algo"] for t in trace if t["op"] == op}


class TestAllgatherSelection:
    def _prog(self, nbytes):
        def prog(mpi):
            yield from mpi.world.allgather(Bytes(nbytes))

        return prog

    def test_small_pof2_uses_recursive_doubling(self):
        trace = traced(self._prog(64), cores=4)
        assert algos_of(trace, "allgather") == {"recursive_doubling"}

    def test_small_non_pof2_uses_bruck(self):
        trace = traced(self._prog(64), cores=3)
        assert algos_of(trace, "allgather") == {"bruck"}

    def test_large_uses_ring(self):
        tuning = generic_tuning()
        nbytes = tuning.allgather_rd_max_total  # total = 4x -> over cap
        trace = traced(self._prog(nbytes), cores=4)
        assert algos_of(trace, "allgather") == {"ring"}

    def test_multinode_uses_hierarchy(self):
        trace = traced(self._prog(64), nodes=2, cores=2)
        assert algos_of(trace, "allgather") == {"smp_hierarchical"}

    def test_one_rank_per_node_stays_flat(self):
        placement = Placement.irregular([1, 1, 1, 1])
        trace = traced(
            self._prog(64), nodes=4, cores=1, placement=placement
        )
        assert algos_of(trace, "allgather") == {"recursive_doubling"}

    def test_smp_aware_disabled_forces_flat(self):
        tuning = generic_tuning().with_(smp_aware=False)
        trace = traced(self._prog(64), nodes=2, cores=2, tuning=tuning)
        assert algos_of(trace, "allgather") == {"recursive_doubling"}


class TestAllgathervSelection:
    def _prog(self, nbytes):
        def prog(mpi):
            yield from mpi.world.allgatherv(Bytes(nbytes))

        return prog

    def test_never_recursive_doubling(self):
        # Even a power-of-two small case avoids RD (the [29] penalty).
        trace = traced(self._prog(64), cores=4)
        assert algos_of(trace, "allgatherv") == {"bruck_v"}

    def test_large_uses_ring_v(self):
        tuning = generic_tuning()
        trace = traced(
            self._prog(tuning.allgatherv_bruck_max_total), cores=4
        )
        assert algos_of(trace, "allgatherv") == {"ring_v"}


class TestBcastSelection:
    def _prog(self, nbytes):
        def prog(mpi):
            yield from mpi.world.bcast(Bytes(nbytes), root=0)

        return prog

    def test_small_binomial(self):
        trace = traced(self._prog(512), cores=4)
        assert algos_of(trace, "bcast") == {"binomial"}

    def test_medium_scatter_allgather(self):
        trace = traced(self._prog(64 * 1024), cores=4)
        assert algos_of(trace, "bcast") == {"scatter_allgather"}

    def test_huge_pipeline(self):
        trace = traced(self._prog(4 * 1024 * 1024), cores=8)
        assert algos_of(trace, "bcast") == {"pipeline"}

    def test_two_ranks_always_binomial(self):
        trace = traced(self._prog(64 * 1024), cores=2)
        assert algos_of(trace, "bcast") == {"binomial"}


class TestAllreduceSelection:
    def _prog(self, nbytes):
        def prog(mpi):
            from repro.mpi.constants import ReduceOp

            yield from mpi.world.allreduce(Bytes(nbytes), ReduceOp.SUM)

        return prog

    def test_small_recursive_doubling(self):
        trace = traced(self._prog(512), cores=4)
        assert algos_of(trace, "allreduce") == {"recursive_doubling"}

    def test_large_pof2_rabenseifner(self):
        trace = traced(self._prog(256 * 1024), cores=4)
        assert algos_of(trace, "allreduce") == {"rabenseifner"}

    def test_large_non_pof2_uses_ring(self):
        trace = traced(self._prog(256 * 1024), cores=3)
        assert algos_of(trace, "allreduce") == {"ring"}


class TestBarrierSelection:
    def test_single_node_uses_flags(self):
        def prog(mpi):
            yield from mpi.world.barrier()

        trace = traced(prog, nodes=1, cores=4)
        assert algos_of(trace, "barrier") == {"shm_flags"}

    def test_multi_node_uses_hierarchy(self):
        def prog(mpi):
            yield from mpi.world.barrier()

        trace = traced(prog, nodes=2, cores=2)
        assert algos_of(trace, "barrier") == {"smp_hierarchical"}


class TestPersonalities:
    def test_tuning_for_machine(self):
        assert tuning_for_machine("hazel_hen").name == "cray_mpich"
        assert tuning_for_machine("vulcan").name == "openmpi"
        assert tuning_for_machine("anything").name == "generic"

    def test_openmpi_has_higher_overheads(self):
        cray, ompi = cray_mpich_tuning(), openmpi_tuning()
        assert ompi.call_overhead > cray.call_overhead
        assert ompi.vector_block_overhead > cray.vector_block_overhead

    def test_with_override(self):
        t = generic_tuning().with_(smp_aware=False)
        assert not t.smp_aware
        assert generic_tuning().smp_aware
