"""Unit tests for payload handling (Bytes, copies, block sets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.collectives.blocks import BlockSet
from repro.mpi.datatypes import (
    Bytes,
    clone,
    concat,
    copy_into,
    nbytes_of,
    slice_payload,
)


class TestBytes:
    def test_size(self):
        assert Bytes(100).nbytes == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bytes(-1)

    def test_equality_and_hash(self):
        assert Bytes(5) == Bytes(5)
        assert Bytes(5) != Bytes(6)
        assert hash(Bytes(5)) == hash(Bytes(5))


class TestNbytesOf:
    def test_none_is_zero(self):
        assert nbytes_of(None) == 0

    def test_ndarray(self):
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes_objects(self):
        assert nbytes_of(b"abc") == 3
        assert nbytes_of(bytearray(5)) == 5

    def test_duck_typed_nbytes(self):
        class Blob:
            nbytes = 42

        assert nbytes_of(Blob()) == 42

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            nbytes_of({"a": 1})


class TestCopyInto:
    def test_none_dst_passthrough(self):
        src = np.arange(4.0)
        assert copy_into(None, src) is src

    def test_ndarray_copy(self):
        dst = np.zeros(4)
        out = copy_into(dst, np.arange(4.0))
        assert out is dst
        np.testing.assert_array_equal(dst, [0, 1, 2, 3])

    def test_truncation_detected(self):
        with pytest.raises(ValueError):
            copy_into(np.zeros(2), np.arange(4.0))

    def test_larger_buffer_partial_fill(self):
        dst = np.full(6, -1.0)
        copy_into(dst, np.arange(4.0))
        np.testing.assert_array_equal(dst, [0, 1, 2, 3, -1, -1])

    def test_symbolic_stays_symbolic(self):
        assert copy_into(Bytes(4), Bytes(4)) == Bytes(4)
        assert copy_into(None, Bytes(7)) == Bytes(7)


class TestClone:
    def test_ndarray_snapshot_is_independent(self):
        src = np.arange(4.0)
        snap = clone(src)
        src[:] = 99
        np.testing.assert_array_equal(snap, [0, 1, 2, 3])

    def test_bytes_passthrough(self):
        b = Bytes(9)
        assert clone(b) is b

    def test_duck_typed_sim_clone(self):
        bs = BlockSet({0: np.arange(3.0)})
        snap = clone(bs)
        bs.blocks[0][:] = -1
        np.testing.assert_array_equal(snap.blocks[0], [0, 1, 2])


class TestSliceConcat:
    def test_slice_ndarray(self):
        out = slice_payload(np.arange(10.0), 2, 5)
        np.testing.assert_array_equal(out, [2, 3, 4])

    def test_slice_bytes_scales_by_itemsize(self):
        assert slice_payload(Bytes(80), 2, 5, itemsize=8) == Bytes(24)

    def test_concat_arrays(self):
        out = concat([np.arange(2.0), np.arange(3.0)])
        np.testing.assert_array_equal(out, [0, 1, 0, 1, 2])

    def test_concat_bytes(self):
        assert concat([Bytes(3), Bytes(4)]) == Bytes(7)

    def test_concat_mixed_rejected(self):
        with pytest.raises(TypeError):
            concat([Bytes(3), np.zeros(2)])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])


class TestBlockSet:
    def test_nbytes_sums_members(self):
        bs = BlockSet({0: Bytes(10), 3: np.zeros(2)})
        assert bs.nbytes == 10 + 16

    def test_add_refuses_overwrite(self):
        bs = BlockSet({0: Bytes(1)})
        with pytest.raises(KeyError):
            bs.add(0, Bytes(2))

    def test_merge_keeps_existing(self):
        bs = BlockSet({0: Bytes(1)})
        bs.merge(BlockSet({0: Bytes(99), 1: Bytes(2)}))
        assert bs[0] == Bytes(1)
        assert bs[1] == Bytes(2)

    def test_as_list_requires_complete(self):
        bs = BlockSet({0: Bytes(1), 2: Bytes(3)})
        with pytest.raises(KeyError):
            bs.as_list(3)
        bs.add(1, Bytes(2))
        assert bs.as_list(3) == [Bytes(1), Bytes(2), Bytes(3)]

    def test_subset_and_owners(self):
        bs = BlockSet({2: Bytes(1), 0: Bytes(2)})
        assert bs.owners() == [0, 2]
        sub = bs.subset([2])
        assert sub.owners() == [2]

    def test_meta_survives_clone_but_not_size(self):
        bs = BlockSet({0: Bytes(8)}, meta={"origin": 3})
        assert bs.nbytes == 8
        assert bs.sim_clone().meta == {"origin": 3}
