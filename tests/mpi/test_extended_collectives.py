"""Tests for reduce_scatter, (ex)scan, and non-blocking collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import Bytes
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of, run


class TestReduceScatter:
    @pytest.mark.parametrize("nodes,cores", [(1, 2), (1, 4), (2, 2), (2, 3)])
    def test_blocks_reduced_and_scattered(self, nodes, cores):
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            # Rank r contributes vector [r, r, ...] of p blocks x 2 elems.
            vec = np.full(2 * comm.size, float(comm.rank))
            mine = yield from comm.reduce_scatter(vec, ReduceOp.SUM)
            return list(np.asarray(mine).reshape(-1))

        rets = returns_of(prog, nodes=nodes, cores=cores)
        total = float(sum(range(size)))
        assert all(r == [total, total] for r in rets)

    def test_large_pof2_uses_halving(self):
        def prog(mpi):
            comm = mpi.world
            vec = np.arange(float(comm.size * 1024)) * (comm.rank + 1)
            mine = yield from comm.reduce_scatter(vec, ReduceOp.SUM)
            return np.asarray(mine).reshape(-1)

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        # rank r's block: sum_k (k+1) * elements of block r.
        factor = sum(range(1, 5))
        base = np.arange(4 * 1024.0)
        for rank, mine in enumerate(rets):
            expected = base[rank * 1024 : (rank + 1) * 1024] * factor
            np.testing.assert_allclose(mine, expected)

    def test_symbolic_mode_sizes(self):
        def prog(mpi):
            comm = mpi.world
            mine = yield from comm.reduce_scatter(Bytes(comm.size * 100))
            return mine.nbytes

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4,
                          payload_mode="model")
        assert all(r == 100 for r in rets)


class TestScanFamily:
    @pytest.mark.parametrize("cores", [2, 5, 8])
    def test_inclusive_scan(self, cores):
        def prog(mpi):
            out = yield from mpi.world.scan(
                np.array([float(mpi.world.rank + 1)])
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=1, cores=cores, nprocs=cores)
        assert rets == [float(sum(range(1, r + 2))) for r in range(cores)]

    @pytest.mark.parametrize("cores", [2, 5, 8])
    def test_exclusive_scan(self, cores):
        def prog(mpi):
            out = yield from mpi.world.exscan(
                np.array([float(mpi.world.rank + 1)])
            )
            return None if out is None else float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=1, cores=cores, nprocs=cores)
        assert rets[0] is None
        for r in range(1, cores):
            assert rets[r] == float(sum(range(1, r + 1)))

    def test_scan_matches_exscan_plus_self(self):
        def prog(mpi):
            mine = np.array([float(mpi.world.rank * 2 + 1)])
            inc = yield from mpi.world.scan(mine)
            exc = yield from mpi.world.exscan(mine)
            base = 0.0 if exc is None else float(np.asarray(exc)[0])
            return float(np.asarray(inc)[0]) == base + float(mine[0])

        assert all(returns_of(prog, nodes=2, cores=3))


class TestNonBlockingCollectives:
    def test_iallreduce_result(self):
        def prog(mpi):
            req = mpi.world.iallreduce(np.array([1.0]))
            out = yield req.event
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == 4.0 for r in rets)

    def test_overlap_with_computation(self):
        # The collective progresses while the rank "computes": total time
        # must be close to max(compute, collective), not the sum.
        def make(overlapped):
            def prog(mpi):
                comm = mpi.world
                compute_time = 1e-3
                if overlapped:
                    req = comm.iallgather(Bytes(80_000))
                    yield mpi.compute(compute_time)
                    yield req.event
                else:
                    yield from comm.allgather(Bytes(80_000))
                    yield mpi.compute(compute_time)
                return mpi.now

            return prog

        seq = max(returns_of(make(False), nodes=2, cores=4,
                             payload_mode="model"))
        ovl = max(returns_of(make(True), nodes=2, cores=4,
                             payload_mode="model"))
        assert ovl < seq

    def test_two_nonblocking_collectives_in_flight(self):
        def prog(mpi):
            comm = mpi.world
            r1 = comm.iallreduce(np.array([float(comm.rank)]))
            r2 = comm.iallgather(np.array([float(comm.rank)]))
            r3 = comm.ibarrier()
            s = yield r1.event
            blocks = yield r2.event
            yield r3.event
            return (float(np.asarray(s)[0]),
                    [float(np.asarray(b)[0]) for b in blocks])

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == (6.0, [0.0, 1.0, 2.0, 3.0]) for r in rets)

    def test_ibcast(self):
        def prog(mpi):
            comm = mpi.world
            buf = (
                np.arange(4.0) if comm.rank == 1 else np.empty(4)
            )
            req = comm.ibcast(buf, root=1)
            out = yield req.event
            return list(np.asarray(out).reshape(-1))

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert all(r == [0.0, 1.0, 2.0, 3.0] for r in rets)

    def test_desynchronized_issue_is_safe(self):
        # Ranks reach the non-blocking collectives at different times
        # (after a non-synchronizing exscan) — the regression scenario
        # for the deterministic-hierarchy fix.
        def prog(mpi):
            comm = mpi.world
            yield from comm.exscan(np.array([1.0]))
            r1 = comm.iallreduce(np.array([1.0]))
            r2 = comm.ibarrier()
            out = yield r1.event
            yield r2.event
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == 4.0 for r in rets)
