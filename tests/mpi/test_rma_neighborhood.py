"""Tests for one-sided RMA windows and neighborhood collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.cart import cart_create
from repro.mpi.collectives.neighborhood import (
    neighbor_alltoall,
    neighbor_list,
)
from repro.mpi.constants import PROC_NULL
from repro.mpi.errors import WindowError
from repro.mpi.rma import win_allocate
from tests.helpers import returns_of


class TestRmaBasics:
    def test_put_visible_at_target(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 32)
            if comm.rank == 0:
                yield from win.lock(1)
                yield from win.put(np.arange(4.0), target=1)
                yield from win.unlock(1)
            yield from win.fence()
            return list(win.local(np.float64))

        rets = returns_of(prog, nodes=2, cores=1, nprocs=2)
        assert rets[1] == [0.0, 1.0, 2.0, 3.0]
        assert rets[0] == [0.0, 0.0, 0.0, 0.0]

    def test_get_fetches_remote(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 16)
            win.local(np.float64)[:] = comm.rank + 10.0
            yield from win.fence()
            peer = (comm.rank + 1) % comm.size
            data = yield from win.get(16, target=peer)
            yield from win.fence()
            return float(np.asarray(data).view(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets == [11.0, 12.0, 13.0, 10.0]

    def test_accumulate_adds(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 8)
            win.local(np.float64)[:] = 0.0
            yield from win.fence()
            yield from win.lock(0)
            yield from win.accumulate(np.array([1.0]), target=0)
            yield from win.unlock(0)
            yield from win.fence()
            return float(win.local(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets[0] == 4.0  # all four ranks accumulated into rank 0

    def test_offset_put(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 32)
            if comm.rank == 0:
                yield from win.put(np.array([9.0]), target=1, offset=16)
            yield from win.fence()
            return list(win.local(np.float64))

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [0.0, 0.0, 9.0, 0.0]

    def test_bounds_checked(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 8)
            err = None
            try:
                yield from win.put(np.arange(4.0), target=0)  # 32 > 8
            except WindowError:
                err = "bounds"
            yield from win.fence()
            return err

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == "bounds" for r in rets)

    def test_exclusive_lock_serializes(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 8)
            yield from win.fence()
            yield from win.lock(0)
            start = mpi.now
            yield mpi.compute(1e-3)  # hold the lock
            yield from win.unlock(0)
            yield from win.fence()
            return start

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        # Hold times must not overlap: starts separated by >= 1 ms.
        starts = sorted(rets)
        assert starts[1] - starts[0] >= 1e-3
        assert starts[2] - starts[1] >= 1e-3

    def test_remote_access_slower_than_local(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 4096)
            yield from win.fence()
            t0 = mpi.now
            yield from win.put(np.zeros(512), target=comm.rank)  # local
            local = mpi.now - t0
            t0 = mpi.now
            yield from win.put(np.zeros(512), target=(comm.rank + 1) % 2)
            remote = mpi.now - t0
            yield from win.fence()
            return (local, remote)

        rets = returns_of(prog, nodes=2, cores=1, nprocs=2)
        assert all(r[1] > r[0] for r in rets)

    def test_model_mode_symbolic(self):
        def prog(mpi):
            comm = mpi.world
            win = yield from win_allocate(comm, 64)
            yield from win.fence()
            data = yield from win.get(64, target=(comm.rank + 1) % 2)
            yield from win.fence()
            return (win.local() is None, data.nbytes)

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2,
                          payload_mode="model")
        assert all(r == (True, 64) for r in rets)


class TestNeighborhood:
    def test_neighbor_list_order(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2, 2), periods=(False, False))
            yield from mpi.world.barrier()
            return neighbor_list(cart)

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        # rank 0 at (0,0): up none, down rank 2, left none, right rank 1.
        assert rets[0] == [PROC_NULL, 2, PROC_NULL, 1]
        # rank 3 at (1,1): up rank 1, down none, left rank 2, right none.
        assert rets[3] == [1, PROC_NULL, 2, PROC_NULL]

    def test_exchange_values(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2, 2), periods=(True, True))
            mine = float(mpi.world.rank)
            payloads = [np.array([mine])] * 4
            got = yield from neighbor_alltoall(cart, payloads)
            return [
                None if g is None else float(np.asarray(g)[0]) for g in got
            ]

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        # Periodic 2x2 grid: up/down neighbour is rank^2, left/right ^1.
        assert rets[0] == [2.0, 2.0, 1.0, 1.0]
        assert rets[3] == [1.0, 1.0, 2.0, 2.0]

    def test_open_boundaries_give_none(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (4,), periods=(False,))
            payloads = [np.array([float(mpi.world.rank)])] * 2
            got = yield from neighbor_alltoall(cart, payloads)
            return [g is None for g in got]

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == [True, False]
        assert rets[3] == [False, True]

    def test_payload_arity_checked(self):
        def prog(mpi):
            cart = cart_create(mpi.world, (2,), periods=(True,))
            err = None
            try:
                yield from neighbor_alltoall(cart, [np.zeros(1)])
            except ValueError:
                err = "arity"
            yield from mpi.world.barrier()
            return err

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == "arity" for r in rets)
