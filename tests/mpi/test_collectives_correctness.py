"""Data-mode correctness of every collective across comm shapes.

Each collective runs with real NumPy payloads on several (nodes, cores)
shapes — single node, power-of-two, non-power-of-two, multi-node — and
results are checked element-for-element against a locally computed
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of

#: (nodes, cores-per-node) grids covering pof2/non-pof2, single/multi node.
SHAPES = [(1, 4), (1, 6), (2, 2), (2, 3), (3, 4), (1, 8)]


def _shape_id(shape):
    return f"{shape[0]}x{shape[1]}"


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
class TestBcast:
    def test_values_from_each_root(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            results = []
            for root in range(comm.size):
                if comm.rank == root:
                    buf = np.arange(6.0) + root * 10
                else:
                    buf = np.empty(6)
                out = yield from comm.bcast(buf, root=root)
                results.append(float(np.asarray(out).reshape(-1)[0]))
            return results

        rets = returns_of(prog, nodes=nodes, cores=cores)
        for rank_result in rets:
            assert rank_result == [float(r * 10) for r in range(size)]

    def test_large_message_path(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            n = 4096  # 32 KB > binomial threshold
            buf = (
                np.arange(n, dtype=np.float64)
                if comm.rank == 0
                else np.empty(n)
            )
            out = yield from comm.bcast(buf, root=0)
            flat = np.asarray(out).reshape(-1)
            return bool(np.allclose(flat, np.arange(n)))

        assert all(returns_of(prog, nodes=nodes, cores=cores))


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
class TestAllgather:
    def test_rank_stamped_blocks(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            mine = np.full(3, float(comm.rank))
            blocks = yield from comm.allgather(mine)
            return [float(np.asarray(b).reshape(-1)[0]) for b in blocks]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        expected = [float(r) for r in range(nodes * cores)]
        assert all(r == expected for r in rets)

    def test_allgatherv_variable_sizes(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            mine = np.full(comm.rank + 1, float(comm.rank))
            blocks = yield from comm.allgatherv(mine)
            return [np.asarray(b).size for b in blocks]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        expected = [r + 1 for r in range(nodes * cores)]
        assert all(r == expected for r in rets)


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
class TestReductions:
    def test_allreduce_sum(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            vec = np.array([float(comm.rank), 1.0])
            out = yield from comm.allreduce(vec, ReduceOp.SUM)
            return list(np.asarray(out))

        rets = returns_of(prog, nodes=nodes, cores=cores)
        expected = [sum(range(size)), float(size)]
        assert all(r == expected for r in rets)

    def test_allreduce_max(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.allreduce(
                np.array([float(comm.rank)]), ReduceOp.MAX
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores)
        assert all(r == nodes * cores - 1 for r in rets)

    def test_reduce_to_each_root(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            outs = []
            for root in range(comm.size):
                out = yield from comm.reduce(
                    np.array([1.0, float(comm.rank)]), ReduceOp.SUM, root
                )
                outs.append(
                    None if out is None else list(np.asarray(out))
                )
            return outs

        rets = returns_of(prog, nodes=nodes, cores=cores)
        for rank, outs in enumerate(rets):
            for root, out in enumerate(outs):
                if rank == root:
                    assert out == [float(size), float(sum(range(size)))]
                else:
                    assert out is None

    def test_scan_prefix_sums(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.scan(
                np.array([float(comm.rank)]), ReduceOp.SUM
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores)
        assert rets == [float(sum(range(r + 1))) for r in range(nodes * cores)]


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
class TestGatherScatter:
    def test_gather(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.gather(
                np.array([float(comm.rank * 2)]), root=1 % comm.size
            )
            if out is None:
                return None
            return [float(np.asarray(b)[0]) for b in out]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        root = 1 % size
        assert rets[root] == [float(r * 2) for r in range(size)]
        assert all(r is None for i, r in enumerate(rets) if i != root)

    def test_gatherv_irregular(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.gatherv(
                np.full(comm.rank + 2, 1.0), root=0
            )
            if out is None:
                return None
            return [np.asarray(b).size for b in out]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        assert rets[0] == [r + 2 for r in range(nodes * cores)]

    def test_scatter(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            payloads = None
            if comm.rank == 0:
                payloads = [np.full(2, float(r * 3)) for r in range(size)]
            mine = yield from comm.scatter(payloads, root=0)
            return float(np.asarray(mine)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores)
        assert rets == [float(r * 3) for r in range(size)]


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
class TestAlltoall:
    def test_personalized_exchange(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            outgoing = [
                np.array([float(comm.rank * 100 + dst)])
                for dst in range(comm.size)
            ]
            incoming = yield from comm.alltoall(outgoing)
            return [float(np.asarray(p)[0]) for p in incoming]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        for rank, incoming in enumerate(rets):
            assert incoming == [
                float(src * 100 + rank) for src in range(size)
            ]

    def test_large_blocks_use_pairwise(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            outgoing = [
                np.full(300, float(comm.rank * size + dst))  # 2.4 KB
                for dst in range(comm.size)
            ]
            incoming = yield from comm.alltoall(outgoing)
            return [float(np.asarray(p)[0]) for p in incoming]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        for rank, incoming in enumerate(rets):
            assert incoming == [
                float(src * size + rank) for src in range(size)
            ]


class TestBarrier:
    @pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
    def test_barrier_orders_phases(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            # Rank 0 is slow before the barrier; everyone's post-barrier
            # time must be >= rank 0's pre-barrier finish.
            if comm.rank == 0:
                yield mpi.compute(1.0e-3)
            yield from comm.barrier()
            return mpi.now

        rets = returns_of(prog, nodes=nodes, cores=cores)
        assert all(t >= 1.0e-3 for t in rets)

    def test_single_rank_barrier_trivial(self):
        def prog(mpi):
            yield from mpi.world.barrier()
            return mpi.now

        rets = returns_of(prog, nodes=1, cores=1, nprocs=1)
        assert rets[0] == 0.0
