"""Edge cases of communicator internals (gates, deterministic children)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import Bytes, MPIError
from tests.helpers import returns_of, run


class TestDeterministicChildren:
    def test_subcomm_members_get_views_nonmembers_none(self):
        def prog(mpi):
            comm = mpi.world
            sub = comm.subcomm("evens", [0, 2])
            yield from comm.barrier()
            if sub is None:
                return None
            return (sub.rank, sub.size)

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets == [(0, 2), None, (1, 2), None]

    def test_same_key_shares_matching_namespace(self):
        def prog(mpi):
            comm = mpi.world
            sub = comm.subcomm("pair", [0, 1])
            if sub is not None:
                if sub.rank == 0:
                    yield from sub.send(Bytes(5), 1)
                else:
                    p = yield from sub.recv(source=0)
                    yield from comm.barrier()
                    return p.nbytes
            yield from comm.barrier()
            return None

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        assert rets[1] == 5

    def test_inconsistent_membership_detected(self):
        def prog(mpi):
            comm = mpi.world
            err = None
            members = [0, 1] if comm.rank == 0 else [0, 2]
            try:
                comm.subcomm("bad", members)
            except MPIError:
                err = "detected"
            yield from comm.barrier()
            return err

        rets = returns_of(prog, nodes=1, cores=3, nprocs=3)
        # Rank 0 registers [0,1]; rank 1 (member of its own [0,2]? no --
        # rank 1 is not in [0,2], returns None silently; rank 2 requests
        # [0,2] against the registered [0,1] and must fail.
        assert rets[2] == "detected"

    def test_distinct_keys_distinct_comms(self):
        def prog(mpi):
            comm = mpi.world
            a = comm.subcomm("a", [0, 1])
            b = comm.subcomm("b", [0, 1])
            yield from comm.barrier()
            if a is None:
                return None
            return a.id != b.id

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r for r in rets if r is not None)


class TestGateMisuse:
    def test_double_arrival_rejected(self):
        def prog(mpi):
            comm = mpi.world
            err = None
            ident = lambda values: dict.fromkeys(values)  # noqa: E731
            comm._shared.arrive(("k", 1), comm.rank, None, ident)
            try:
                comm._shared.arrive(("k", 1), comm.rank, None, ident)
            except MPIError:
                err = "double"
            yield from comm.barrier()
            return err

        # Rank 0 runs first and re-arrives while the gate is pending ->
        # rejected.  Rank 1's first arrival then completes (and deletes)
        # the gate, so its second arrival opens a fresh gate: no error,
        # and the leftover gate never fires (harmless).
        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[0] == "double"


class TestCollectiveSequences:
    def test_interleaved_collectives_on_two_comms(self):
        # Collectives on different comms may interleave freely.
        def prog(mpi):
            comm = mpi.world
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            r1 = comm.iallreduce(np.array([1.0]))
            out_sub = yield from sub.allreduce(np.array([10.0]))
            total = yield r1.event
            return (float(np.asarray(total)[0]),
                    float(np.asarray(out_sub)[0]))

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == (4.0, 20.0) for r in rets)

    def test_long_collective_sequence_deterministic(self):
        def prog(mpi):
            comm = mpi.world
            acc = 0.0
            for i in range(10):
                out = yield from comm.allreduce(
                    np.array([float(comm.rank + i)])
                )
                acc += float(np.asarray(out)[0])
                yield from comm.barrier()
            return acc

        a = returns_of(prog, nodes=2, cores=2)
        b = returns_of(prog, nodes=2, cores=2)
        assert a == b

    def test_hundreds_of_barriers(self):
        def prog(mpi):
            for _ in range(200):
                yield from mpi.world.barrier()
            return mpi.now

        rets = returns_of(prog, nodes=2, cores=2, payload_mode="model")
        assert len(set(rets)) == 1


class TestCommIdentity:
    def test_world_rank_translation(self):
        def prog(mpi):
            comm = mpi.world
            sub = yield from comm.split(
                color=0 if comm.rank >= 2 else 1, key=comm.rank
            )
            yield from comm.barrier()
            return [sub.world_rank_of(r) for r in range(sub.size)]

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[2] == [2, 3]
        assert rets[0] == [0, 1]
