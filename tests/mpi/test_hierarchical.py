"""Tests of the SMP-aware (leader-based) collective wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Placement
from repro.mpi import Bytes
from repro.mpi.collectives import _bridge_allgatherv
from repro.mpi.collectives.hierarchical import (
    hier_allgather,
    hier_bcast,
    hier_comms,
    multileader_allgather,
)
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of

TAG = 2**28 + 77


def _bridge(bridge, blocks, tag):
    total = blocks.nbytes * bridge.size if blocks is not None else 0
    result = yield from _bridge_allgatherv(bridge, blocks, tag, total)
    return result


class TestHierComms:
    def test_leader_has_bridge(self):
        def prog(mpi):
            shm, bridge = yield from hier_comms(mpi.world)
            return (shm.size, bridge.size if bridge else None)

        rets = returns_of(prog, nodes=3, cores=2)
        assert rets[0] == (2, 3)     # leader of node 0: bridge of 3 leaders
        assert rets[1] == (2, None)  # child: no bridge handle
        assert rets[4] == (2, 3)     # leader of node 2
        assert rets[5] == (2, None)

    def test_cache_returns_same_comms(self):
        def prog(mpi):
            a = yield from hier_comms(mpi.world)
            b = yield from hier_comms(mpi.world)
            return a[0] is b[0] and a[1] is b[1]

        assert all(returns_of(prog, nodes=2, cores=2))


class TestHierAllgather:
    @pytest.mark.parametrize("nodes,cores", [(2, 2), (2, 3), (3, 4)])
    def test_values_complete_and_ordered(self, nodes, cores):
        def prog(mpi):
            comm = mpi.world
            full = yield from hier_allgather(
                comm, np.array([float(comm.rank)]), TAG, _bridge
            )
            return [
                float(np.asarray(b)[0]) for b in full.as_list(comm.size)
            ]

        rets = returns_of(prog, nodes=nodes, cores=cores)
        expected = [float(r) for r in range(nodes * cores)]
        assert all(r == expected for r in rets)

    def test_irregular_population(self):
        placement = Placement.irregular([3, 1, 2])

        def prog(mpi):
            comm = mpi.world
            full = yield from hier_allgather(
                comm, np.array([float(comm.rank * 2)]), TAG, _bridge
            )
            return [
                float(np.asarray(b)[0]) for b in full.as_list(comm.size)
            ]

        rets = returns_of(prog, nodes=3, cores=4, placement=placement)
        expected = [float(r * 2) for r in range(6)]
        assert all(r == expected for r in rets)

    def test_works_on_subcommunicator(self):
        # Hierarchy of a *row* communicator spanning 2 nodes.
        def prog(mpi):
            comm = mpi.world
            row = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            full = yield from hier_allgather(
                row, np.array([float(comm.rank)]), TAG, _bridge
            )
            return [float(np.asarray(b)[0]) for b in full.as_list(row.size)]

        rets = returns_of(prog, nodes=2, cores=4)
        # row 0 holds world ranks 0,2,4,6; row 1 holds 1,3,5,7
        assert rets[0] == [0.0, 2.0, 4.0, 6.0]
        assert rets[1] == [1.0, 3.0, 5.0, 7.0]


class TestHierBcast:
    def _flat_bcast(self, bridge, payload, root, tag):
        from repro.mpi.collectives.bcast import bcast_binomial

        result = yield from bcast_binomial(bridge, payload, root, tag)
        return result

    @pytest.mark.parametrize("root", [0, 1, 5])
    def test_roots_leader_and_child(self, root):
        flat = self._flat_bcast

        def prog(mpi):
            comm = mpi.world
            payload = (
                np.arange(3.0) + root if comm.rank == root else np.empty(3)
            )
            out = yield from hier_bcast(comm, payload, root, TAG, flat)
            return list(np.asarray(out).reshape(-1))

        rets = returns_of(prog, nodes=2, cores=3)
        assert all(r == [root, root + 1, root + 2] for r in rets)


class TestHierReductions:
    def test_reduce_via_dispatch(self):
        def prog(mpi):
            comm = mpi.world
            out = yield from comm.reduce(
                np.array([1.0]), ReduceOp.SUM, root=3
            )
            return None if out is None else float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=2, cores=3)
        assert rets[3] == 6.0
        assert all(r is None for i, r in enumerate(rets) if i != 3)

    def test_allreduce_via_dispatch_multinode(self):
        def prog(mpi):
            comm = mpi.world
            out = yield from comm.allreduce(
                np.array([float(comm.rank)]), ReduceOp.MAX
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=3, cores=2)
        assert all(r == 5.0 for r in rets)


class TestMultiLeader:
    @pytest.mark.parametrize("leaders", [1, 2, 4])
    def test_correctness_all_leader_counts(self, leaders):
        def prog(mpi):
            comm = mpi.world
            full = yield from multileader_allgather(
                comm, np.array([float(comm.rank)]), TAG, leaders, _bridge
            )
            return [
                float(np.asarray(b)[0]) for b in full.as_list(comm.size)
            ]

        rets = returns_of(prog, nodes=2, cores=4)
        expected = [float(r) for r in range(8)]
        assert all(r == expected for r in rets)

    def test_more_leaders_than_ranks_clamped(self):
        def prog(mpi):
            comm = mpi.world
            full = yield from multileader_allgather(
                comm, Bytes(8), TAG, leaders_per_node=99,
                select_bridge=_bridge,
            )
            return len(full.as_list(comm.size))

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == 4 for r in rets)
