"""Integration tests for point-to-point messaging semantics and timing."""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import returns_of, run
from repro.machine import testing_machine as make_testing_spec
from repro.mpi import ANY_SOURCE, ANY_TAG, Bytes, TruncationError
from repro.mpi.constants import PROC_NULL


class TestBasics:
    def test_send_recv_roundtrip(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(np.arange(5.0), 1, tag=3)
                return None
            if comm.rank == 1:
                data = yield from comm.recv(source=0, tag=3)
                return list(np.asarray(data))
            return None

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [0, 1, 2, 3, 4]

    def test_value_semantics_snapshot_at_send(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                buf = np.arange(4.0)
                req = comm.isend(buf, 1)
                buf[:] = -1  # mutate after isend: receiver must not see it
                yield req.event
                return None
            data = yield from comm.recv(source=0)
            return list(np.asarray(data))

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [0, 1, 2, 3]

    def test_recv_into_buffer(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(np.full(3, 7.0), 1)
                return None
            buf = np.zeros(3)
            out = yield from comm.recv(buf=buf, source=0)
            assert out is buf
            return list(buf)

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [7.0, 7.0, 7.0]

    def test_truncation_error(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(np.zeros(10), 1)
                return "sent"
            try:
                yield from comm.recv(buf=np.zeros(2), source=0)
            except TruncationError:
                return "truncated"
            return "no error"

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == "truncated"

    def test_status_reports_source_tag_size(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 2:
                yield from comm.send(Bytes(64), 0, tag=9)
                return None
            if comm.rank == 0:
                _payload, status = yield from comm.recv_status(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                return (status.source, status.tag, status.nbytes)
            return None

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == (2, 9, 64)

    def test_peer_out_of_range(self):
        def prog(mpi):
            comm = mpi.world
            err = None
            if comm.rank == 0:
                try:
                    comm.isend(Bytes(1), 99)
                except Exception as exc:
                    err = type(exc).__name__
            yield from comm.barrier()
            return err

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[0] == "MPIError"


class TestMatching:
    def test_tag_selectivity(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(Bytes(1), 1, tag=10)
                yield from comm.send(Bytes(2), 1, tag=20)
                return None
            first = yield from comm.recv(source=0, tag=20)
            second = yield from comm.recv(source=0, tag=10)
            return (first.nbytes, second.nbytes)

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == (2, 1)

    def test_non_overtaking_same_tag(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                for i in range(4):
                    yield from comm.send(Bytes(i + 1), 1, tag=5)
                return None
            sizes = []
            for _ in range(4):
                p = yield from comm.recv(source=0, tag=5)
                sizes.append(p.nbytes)
            return sizes

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[1] == [1, 2, 3, 4]

    def test_any_source_matches_earliest_post(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank in (1, 2):
                # rank 1 sends at t=0; rank 2 sends later.
                if comm.rank == 2:
                    yield mpi.compute(1e-3)
                yield from comm.send(Bytes(comm.rank), 0, tag=1)
                return None
            if comm.rank == 0:
                a = yield from comm.recv(source=ANY_SOURCE, tag=1)
                b = yield from comm.recv(source=ANY_SOURCE, tag=1)
                return (a.nbytes, b.nbytes)
            return None

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == (1, 2)

    def test_proc_null_completes_immediately(self):
        def prog(mpi):
            comm = mpi.world
            yield from comm.send(Bytes(10), PROC_NULL)
            payload = yield from comm.recv(source=PROC_NULL)
            return payload is None

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(rets)

    def test_sendrecv_exchange(self):
        def prog(mpi):
            comm = mpi.world
            peer = 1 - comm.rank
            got = yield from comm.sendrecv(
                np.full(2, float(comm.rank)), dest=peer, source=peer
            )
            return float(np.asarray(got)[0])

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets == [1.0, 0.0]

    def test_waitall_gathers_everything(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=s) for s in (1, 2, 3)]
                results = yield from comm.waitall(reqs)
                return [p.nbytes for p, _s in results]
            yield from comm.send(Bytes(comm.rank * 10), 0, tag=comm.rank)
            return None

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert rets[0] == [10, 20, 30]


class TestProtocolTiming:
    """Eager vs rendezvous behaviour, intra vs inter node costs."""

    def test_eager_sender_completes_before_recv_posted(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                t0 = mpi.now
                yield from comm.send(Bytes(100), 1)  # eager (< threshold)
                return mpi.now - t0
            yield mpi.compute(1.0)  # receiver is late
            yield from comm.recv(source=0)
            return None

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[0] < 0.5  # sender did NOT wait the receiver's 1 s

    def test_rendezvous_sender_blocks_until_recv(self):
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                t0 = mpi.now
                yield from comm.send(Bytes(100_000), 1)  # > threshold
                return mpi.now - t0
            yield mpi.compute(1.0)
            yield from comm.recv(source=0)
            return None

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert rets[0] >= 1.0  # sender waited for the late receiver

    def test_internode_slower_than_intranode(self):
        def make(nodes, cores):
            def prog(mpi):
                comm = mpi.world
                if comm.rank == 0:
                    yield from comm.send(Bytes(1000), comm.size - 1)
                    return None
                if comm.rank == comm.size - 1:
                    t0 = mpi.now
                    yield from comm.recv(source=0)
                    return mpi.now - t0
                return None

            return prog

        intra = returns_of(make(1, 2), nodes=1, cores=2, nprocs=2)[-1]
        inter = returns_of(make(2, 1), nodes=2, cores=1, nprocs=2)[-1]
        assert inter > intra

    def test_intra_eager_pays_two_copies(self):
        # CICO: 0.1us latency + copy-in + copy-out, each 2*n/5GB/s.
        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                yield from comm.send(Bytes(4000), 1)
                return None
            t0 = mpi.now
            yield from comm.recv(source=0)
            return mpi.now - t0

        spec = make_testing_spec(1, 2)
        rets = returns_of(prog, nodes=1, cores=2, nprocs=2, spec=spec)
        expected = 1.0e-7 + 2 * (2 * 4000 / 5.0e9)
        assert rets[1] == pytest.approx(expected)

    def test_job_reports_unmatched_messages(self):
        from repro.mpi.errors import MPIError

        def prog(mpi):
            comm = mpi.world
            if comm.rank == 0:
                # Eager send that nobody receives.
                yield from comm.send(Bytes(1), 1)
            return None

        with pytest.raises(MPIError, match="unmatched"):
            run(prog, nodes=1, cores=2, nprocs=2)
