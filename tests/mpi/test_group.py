"""Unit tests for process groups."""

from __future__ import annotations

import pytest

from repro.mpi.constants import UNDEFINED
from repro.mpi.group import Group


def test_basic_translation():
    g = Group([4, 7, 2])
    assert g.size == 3
    assert g.world_rank(0) == 4
    assert g.world_rank(2) == 2
    assert g.rank_of(7) == 1
    assert g.rank_of(99) == UNDEFINED


def test_contains():
    g = Group([0, 5])
    assert g.contains(5)
    assert not g.contains(4)


def test_translate_many():
    g = Group([10, 20, 30])
    assert g.translate([2, 0]) == [30, 10]


def test_duplicates_rejected():
    with pytest.raises(ValueError):
        Group([1, 1])


def test_empty_rejected():
    with pytest.raises(ValueError):
        Group([])


def test_negative_rejected():
    with pytest.raises(ValueError):
        Group([-1, 0])


def test_equality_hash():
    assert Group([1, 2]) == Group([1, 2])
    assert Group([1, 2]) != Group([2, 1])
    assert hash(Group([1, 2])) == hash(Group([1, 2]))


def test_len_and_world_ranks():
    g = Group([3, 1])
    assert len(g) == 2
    assert g.world_ranks() == (3, 1)
