"""Matrix coverage: dispatched collectives across placements × roots.

The hierarchical (SMP-aware) paths branch on leader identity, root
location, and node population; this module sweeps those axes so every
branch combination is exercised with value verification.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Placement
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of

PLACEMENTS = {
    "regular_2x3": Placement.block(2, 3),
    "irregular_3_1_2": Placement.irregular([3, 1, 2]),
    "roundrobin_2x3": Placement.round_robin(2, 3),
    "single_heavy": Placement.irregular([5, 1]),
}


def _nodes_cores(placement: Placement) -> tuple[int, int]:
    return placement.num_nodes, max(placement.counts())


@pytest.mark.parametrize("pname", sorted(PLACEMENTS))
class TestBcastMatrix:
    @pytest.mark.parametrize("root", [0, 1, 3, 5])
    def test_bcast_value_everywhere(self, pname, root):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)

        def prog(mpi):
            comm = mpi.world
            buf = (
                np.full(3, root * 2.0)
                if comm.rank == root
                else np.empty(3)
            )
            out = yield from comm.bcast(buf, root=root)
            return float(np.asarray(out).reshape(-1)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement)
        assert all(r == root * 2.0 for r in rets), (pname, root)


@pytest.mark.parametrize("pname", sorted(PLACEMENTS))
class TestReduceMatrix:
    @pytest.mark.parametrize("root", [0, 2, 5])
    def test_reduce_sum_to_each_root(self, pname, root):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)
        size = placement.num_ranks

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.reduce(
                np.array([float(comm.rank)]), ReduceOp.SUM, root
            )
            return None if out is None else float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement)
        assert rets[root] == float(sum(range(size))), pname
        assert sum(1 for r in rets if r is not None) == 1


@pytest.mark.parametrize("pname", sorted(PLACEMENTS))
class TestAllgatherMatrix:
    def test_allgather_ordering(self, pname):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)

        def prog(mpi):
            comm = mpi.world
            blocks = yield from comm.allgather(
                np.array([float(comm.rank * 7)])
            )
            return [float(np.asarray(b)[0]) for b in blocks]

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement)
        expected = [float(r * 7) for r in range(placement.num_ranks)]
        assert all(r == expected for r in rets), pname

    def test_allgatherv_ordering(self, pname):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)

        def prog(mpi):
            comm = mpi.world
            mine = np.full(1 + comm.rank % 3, float(comm.rank))
            blocks = yield from comm.allgatherv(mine)
            return [
                (np.asarray(b).size, float(np.asarray(b).reshape(-1)[0]))
                for b in blocks
            ]

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement)
        expected = [
            (1 + r % 3, float(r)) for r in range(placement.num_ranks)
        ]
        assert all(r == expected for r in rets), pname


@pytest.mark.parametrize("pname", sorted(PLACEMENTS))
class TestAllreduceMatrix:
    @pytest.mark.parametrize("op,expected_fn", [
        (ReduceOp.SUM, lambda xs: sum(xs)),
        (ReduceOp.MAX, lambda xs: max(xs)),
        (ReduceOp.MIN, lambda xs: min(xs)),
        (ReduceOp.PROD, lambda xs: float(np.prod(xs))),
    ])
    def test_ops(self, pname, op, expected_fn):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)
        size = placement.num_ranks

        def prog(mpi):
            comm = mpi.world
            out = yield from comm.allreduce(
                np.array([float(comm.rank + 1)]), op
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement)
        expected = float(expected_fn([r + 1 for r in range(size)]))
        assert all(r == pytest.approx(expected) for r in rets), (pname, op)


@pytest.mark.parametrize("pname", sorted(PLACEMENTS))
class TestBarrierMatrix:
    def test_barrier_synchronizes(self, pname):
        placement = PLACEMENTS[pname]
        nodes, cores = _nodes_cores(placement)

        def prog(mpi):
            if mpi.world.rank == mpi.world.size - 1:
                yield mpi.compute(5e-4)
            yield from mpi.world.barrier()
            return mpi.now

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          placement=placement, payload_mode="model")
        assert all(t >= 5e-4 for t in rets), pname
