"""Property-based tests (hypothesis) for the socket/NUMA tier.

Three families of invariants:

* **cross-socket hops cost more** — in both the analytic model
  (``shm_round``) and the simulator (a cross-socket p2p send is never
  faster than the same send within one socket), and latency is
  monotone in the number of crossing messages;
* **compact beats scatter** for on-node-heavy collectives that move
  *uniform-size* blocks every round (ring / linear / flag algorithms):
  the compact slot→socket map minimizes crossings so it is never
  slower than scatter.  Doubling-message-size algorithms (binomial,
  recursive doubling, Bruck) are deliberately excluded — scatter
  localizes their big late rounds, which can legitimately win;
* **transports are deterministic and finite** — the same run repeats
  bit-identically and all latencies are finite and positive for every
  registered transport.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.model import CostModel
from repro.machine.placement import Placement
from repro.machine.presets import testing_machine as make_testing_machine
from repro.machine.transport import TRANSPORTS
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

# Rank-program properties are expensive: small shapes, few examples.
_SMALL = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

transports = st.sampled_from(sorted(TRANSPORTS))
sizes = st.sampled_from([8, 512, 4096, 65536])

#: Virtual-time rendezvous before the timed region (as in the
#: conformance harness): all ranks align to the same instant.
_ALIGN = 1.0e-3


def _two_socket_model(transport: str, cores: int = 8) -> CostModel:
    spec = make_testing_machine(1, cores=cores, sockets=2, transport=transport)
    return CostModel(spec, (cores,))


# ---------------------------------------------------------------------------
# Cross-socket hops cost more (model)
# ---------------------------------------------------------------------------

@given(transports, sizes)
@_SMALL
def test_single_cross_socket_message_costs_at_least_local(transport, nbytes):
    model = _two_socket_model(transport)
    local = model.shm_round(nbytes, 1, ncross=0)
    cross = model.shm_round(nbytes, 1, ncross=1)
    assert cross >= local
    # The extra hop latency is always charged on the crossing path
    # (up to float addition noise).
    assert cross - local >= model.x_lat * (1 - 1e-9)


@given(transports, sizes, st.integers(1, 8))
@_SMALL
def test_round_latency_monotone_in_crossing_count(transport, nbytes, conc):
    """With every message crossing sockets, adding one more crossing
    message never makes the round faster (the xsocket link only has
    ``xsocket_streams`` slots)."""
    model = _two_socket_model(transport)
    times = [model.shm_round(nbytes, n, ncross=n) for n in range(1, conc + 1)]
    assert all(b >= a for a, b in zip(times, times[1:]))


# ---------------------------------------------------------------------------
# Cross-socket hops cost more (simulator)
# ---------------------------------------------------------------------------

def _ping(mpi, peer, nbytes):
    comm = mpi.world
    yield mpi.compute(_ALIGN - mpi.now)
    if comm.rank == 0:
        yield from comm.send(Bytes(nbytes), peer, tag=0)
    elif comm.rank == peer:
        yield from comm.recv(source=0, tag=0)
    return mpi.now - _ALIGN


def _ping_latency(spec, peer, nbytes):
    result = run_program(
        spec, None, _ping, placement=Placement.block(1, 4),
        payload="cost-only", fast_path=True,
        program_kwargs={"peer": peer, "nbytes": nbytes},
    )
    return result.returns[peer]


@given(transports, sizes)
@_SMALL
def test_des_cross_socket_send_is_never_faster(transport, nbytes):
    """Compact placement on a 4-core 2-socket node: rank 1 shares rank
    0's socket, rank 2 sits on the other one."""
    spec = make_testing_machine(1, cores=4, sockets=2, transport=transport)
    same = _ping_latency(spec, peer=1, nbytes=nbytes)
    cross = _ping_latency(spec, peer=2, nbytes=nbytes)
    assert cross >= same


# ---------------------------------------------------------------------------
# Compact placement never loses to scatter on uniform-block algorithms
# ---------------------------------------------------------------------------

#: On-node-heavy algorithms whose per-round message size is constant;
#: for these the crossing count dominates, and compact minimizes it.
_UNIFORM_BLOCK_CASES = [
    ("allgather", "ring"),
    ("allreduce", "ring"),
    ("allreduce", "recursive_doubling"),  # constant-size exchanges
    ("barrier", "shm_flags"),
    ("bcast", "pipeline"),
    ("bcast", "scatter_allgather"),
    ("gather", "linear"),
    ("scatter", "linear"),
    ("scan", "linear"),
]


@given(
    st.sampled_from(_UNIFORM_BLOCK_CASES),
    transports,
    sizes,
    st.sampled_from([2, 4, 6, 8, 12, 16, 24]),
)
@_SMALL
def test_compact_socket_mode_never_slower_than_scatter(case, transport,
                                                       nbytes, ppn):
    op, algo = case
    spec = make_testing_machine(1, cores=ppn, sockets=2, transport=transport)
    compact = CostModel(spec, (ppn,), socket_mode="compact")
    scatter = CostModel(spec, (ppn,), socket_mode="scatter")
    t_compact = compact.predict(op, algo, nbytes)
    t_scatter = scatter.predict(op, algo, nbytes)
    assert t_compact <= t_scatter * (1 + 1e-12)


# ---------------------------------------------------------------------------
# Transports are deterministic and finite
# ---------------------------------------------------------------------------

def _allgather_once(mpi, nbytes):
    yield mpi.compute(_ALIGN - mpi.now)
    yield from mpi.world.allgather(Bytes(nbytes))
    return mpi.now - _ALIGN


@given(transports, sizes)
@_SMALL
def test_transports_deterministic_and_finite(transport, nbytes):
    spec = make_testing_machine(2, cores=4, sockets=2, transport=transport)
    runs = [
        run_program(
            spec, None, _allgather_once,
            placement=Placement.block(2, 4),
            payload="cost-only", fast_path=True,
            program_kwargs={"nbytes": nbytes},
        )
        for _ in range(2)
    ]
    first, second = runs
    assert first.returns == second.returns
    assert first.events_processed == second.events_processed
    assert first.sent_bytes == second.sent_bytes
    for t in first.returns:
        assert math.isfinite(t) and t > 0.0


@given(sizes)
@_SMALL
def test_transport_latencies_ordered_by_copy_count(nbytes):
    """Fewer staged copies can't hurt: on identical machines the
    single-copy direct transport is never slower than the two-copy
    CICO path for a lone on-node message of rendezvous size."""
    two = _two_socket_model("shm_two_copy")
    pip = _two_socket_model("pip_direct")
    assert pip.shm_round(nbytes, 1) <= two.shm_round(nbytes, 1)
